"""Replay of a static schedule under a failure scenario (section 5).

The simulator enforces the paper's runtime semantics:

* every processor executes its operation replicas in the static order;
  an operation starts when the processor is free *and* the first
  complete set of inputs has arrived (one value per predecessor — the
  ``Npf`` later input sets are ignored);
* every link transmits its comms in the static order among those whose
  data exists; a comm whose producer is silent simply never occupies the
  medium (fail-silence: nothing is transmitted, no timeout is needed on
  the critical path);
* a processor that is down is silent: its operations produce nothing
  and its comms are never sent; an intermittent processor resumes its
  static sequence when it recovers;
* failure detection is optional (section 5's two options): with
  :attr:`DetectionPolicy.TIMEOUT_ARRAY` every processor learns that a
  sender is faulty when an expected comm does not arrive by its static
  date, and suppresses its own future sends toward known-faulty
  processors (which relieves the links but gives up on intermittent
  recovery — including after detection *mistakes*, which the paper
  acknowledges).

Implementation note.  Events are decided by a worklist that follows the
resource total orders and the data dependencies.  An operation normally
waits until *all* its potential arrivals are decided (so the first
complete input set is known exactly); on rare topologies this
conservative rule can stall even though the real system would proceed
with the arrivals already at hand, so a stalled worklist fires the
pending operation with the earliest candidate start among those whose
every predecessor already has one delivered input — exactly what the
blocking-receive executive would observe.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.exceptions import SimulationError
from repro.graphs.algorithm import AlgorithmGraph
from repro.schedule.events import ScheduledComm, ScheduledOperation
from repro.schedule.schedule import Schedule
from repro.simulation.failures import FailureScenario
from repro.simulation.trace import (
    EventStatus,
    ExecutionTrace,
    SimulatedComm,
    SimulatedOperation,
)


class DetectionPolicy(str, enum.Enum):
    """The two failure-detection options of section 5."""

    #: Option 1 — no detection: healthy processors keep sending to
    #: faulty ones; intermittent failures are recoverable.
    NONE = "none"
    #: Option 2 — timeout array: missed comms reveal faulty senders,
    #: whose processors then stop receiving traffic for good.
    TIMEOUT_ARRAY = "timeout-array"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class _ProcessorState:
    events: tuple[ScheduledOperation, ...]
    index: int = 0
    free_at: float = 0.0
    blocked: bool = False

    @property
    def pending(self) -> ScheduledOperation | None:
        if self.blocked or self.index >= len(self.events):
            return None
        return self.events[self.index]


@dataclass
class _LinkState:
    events: tuple[ScheduledComm, ...]
    index: int = 0
    free_at: float = 0.0

    @property
    def pending(self) -> ScheduledComm | None:
        if self.index >= len(self.events):
            return None
        return self.events[self.index]


@dataclass
class _Knowledge:
    """Per-processor array of known-faulty processors (detection times)."""

    table: dict[str, dict[str, float]] = field(default_factory=dict)

    def learn(self, observer: str, faulty: str, at: float) -> None:
        known = self.table.setdefault(observer, {})
        known[faulty] = min(known.get(faulty, math.inf), at)

    def knows_at(self, observer: str, faulty: str, at: float) -> bool:
        return self.table.get(observer, {}).get(faulty, math.inf) <= at

    def as_dict(self) -> dict[str, dict[str, float]]:
        return {p: dict(k) for p, k in self.table.items()}


class ScheduleSimulator:
    """Replays one static schedule under arbitrary failure scenarios.

    Build it once per schedule; :meth:`run` is side-effect free and can
    be called with many scenarios (the nominal run is simply
    ``run(FailureScenario.none())``).
    """

    def __init__(
        self,
        schedule: Schedule,
        algorithm: AlgorithmGraph,
        detection: DetectionPolicy = DetectionPolicy.NONE,
    ) -> None:
        self._schedule = schedule
        self._algorithm = algorithm
        self._detection = DetectionPolicy(detection)
        #: Cumulative event decisions across every :meth:`run` of this
        #: instance — the work measure the batched engine is benchmarked
        #: against (decided operations + comms; drained events excluded).
        self.decisions = 0
        #: Cumulative number of :meth:`run` invocations (scenarios replayed).
        self.runs = 0
        for operation in algorithm.operation_names():
            if not schedule.replicas_of(operation):
                raise SimulationError(
                    f"operation {operation!r} of the algorithm is not in the "
                    f"schedule"
                )
        self._final_hop_index = self._compute_final_hops()
        self._feeding_comms = self._compute_feeding_comms()

    # ------------------------------------------------------------------
    # static precomputation
    # ------------------------------------------------------------------
    def _compute_final_hops(self) -> dict[tuple, int]:
        """Last hop index of every comm chain (multi-hop routes).

        A chain is one route copy of one transfer: route-replicated
        transfers (``npl >= 1``) have ``Npl + 1`` independent chains per
        ``(source, target, replica pair)``.
        """
        last: dict[tuple, int] = {}
        for comm in self._schedule.all_comms():
            key = self._chain_key(comm)
            last[key] = max(last.get(key, 0), comm.hop_index)
        return last

    @staticmethod
    def _chain_key(comm: ScheduledComm) -> tuple:
        return (
            comm.source, comm.target,
            comm.source_replica, comm.target_replica, comm.route,
        )

    def _is_final_hop(self, comm: ScheduledComm) -> bool:
        return comm.hop_index == self._final_hop_index[self._chain_key(comm)]

    def _compute_feeding_comms(
        self,
    ) -> dict[tuple[str, int, str], tuple[ScheduledComm, ...]]:
        """Final-hop comms feeding each (operation, replica) per predecessor."""
        feeding: dict[tuple[str, int, str], list[ScheduledComm]] = {}
        for comm in self._schedule.all_comms():
            if not self._is_final_hop(comm):
                continue
            key = (comm.target, comm.target_replica, comm.source)
            feeding.setdefault(key, []).append(comm)
        return {k: tuple(v) for k, v in feeding.items()}

    def _feeding_local(
        self, event: ScheduledOperation, predecessor: str
    ) -> ScheduledOperation | None:
        """The co-located predecessor replica that feeds ``event``, if any.

        A replica of the predecessor hosted by the same processor counts
        as a feed only when the static schedule runs it *before* the
        consumer — an extra replica duplicated later (for another
        consumer) ends after ``event`` starts and cannot feed it.
        """
        local = self._schedule.replica_on(predecessor, event.processor)
        if local is None or local.end > event.start + 1e-9:
            return None
        return local

    def _previous_hop(self, comm: ScheduledComm) -> ScheduledComm | None:
        if comm.hop_index == 0:
            return None
        for other in self._schedule.all_comms():
            if (
                other.source == comm.source
                and other.target == comm.target
                and other.source_replica == comm.source_replica
                and other.target_replica == comm.target_replica
                and other.route == comm.route
                and other.hop_index == comm.hop_index - 1
            ):
                return other
        raise SimulationError(f"missing hop {comm.hop_index - 1} for {comm!r}")

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def run(
        self,
        scenario: FailureScenario | None = None,
        initial_knowledge: dict[str, set[str]] | None = None,
    ) -> ExecutionTrace:
        """Simulate the schedule under ``scenario`` (nominal when None).

        ``initial_knowledge`` seeds the failure-detection arrays
        (option 2): ``{observer: {known_faulty, ...}}`` effective from
        t = 0 — this is how detection knowledge persists across the
        iterations of the cyclic execution (section 5: "avoid further
        comms to the faulty processors in ... the subsequent
        iterations").
        """
        scenario = scenario or FailureScenario.none()
        self.runs += 1
        processors = {
            p: _ProcessorState(self._schedule.operations_on(p))
            for p in self._schedule.processor_names()
        }
        links = {
            l: _LinkState(self._schedule.comms_on(l))
            for l in self._schedule.link_names()
        }
        op_outcomes: dict[ScheduledOperation, SimulatedOperation] = {}
        comm_outcomes: dict[ScheduledComm, SimulatedComm] = {}
        knowledge = _Knowledge()
        if initial_knowledge:
            for observer, faulty_set in initial_knowledge.items():
                for faulty in faulty_set:
                    knowledge.learn(observer, faulty, 0.0)

        while True:
            progress = self._sweep(
                processors, links, op_outcomes, comm_outcomes, knowledge, scenario
            )
            if progress:
                continue
            if self._relaxed_fire(
                processors, op_outcomes, comm_outcomes, scenario
            ):
                continue
            break

        self._finalize(processors, links, op_outcomes, comm_outcomes)
        return ExecutionTrace(
            operations=[op_outcomes[e] for e in self._schedule.all_operations()],
            comms=[comm_outcomes[e] for e in self._schedule.all_comms()],
            detections=knowledge.as_dict(),
        )

    # ------------------------------------------------------------------
    # one worklist sweep
    # ------------------------------------------------------------------
    def _sweep(
        self,
        processors: dict[str, _ProcessorState],
        links: dict[str, _LinkState],
        op_outcomes: dict,
        comm_outcomes: dict,
        knowledge: _Knowledge,
        scenario: FailureScenario,
    ) -> bool:
        progress = False
        for name in sorted(links):
            state = links[name]
            while True:
                comm = state.pending
                if comm is None or not self._comm_ready(comm, op_outcomes, comm_outcomes):
                    break
                self._decide_comm(
                    comm, state, op_outcomes, comm_outcomes, knowledge, scenario
                )
                state.index += 1
                progress = True
        for name in sorted(processors):
            state = processors[name]
            while True:
                event = state.pending
                if event is None or not self._operation_ready(
                    event, op_outcomes, comm_outcomes
                ):
                    break
                self._decide_operation(
                    event, state, op_outcomes, comm_outcomes, scenario,
                    relaxed=False,
                )
                if state.blocked:
                    # A blocking receive never completes: the executive
                    # is stuck, so every later operation of this
                    # processor starves too.  Deciding them *now* (not
                    # at drain time) lets their outgoing comms take the
                    # normal decision path, where the receivers register
                    # the missed comms in their failure-detection arrays.
                    self._starve_rest(state, op_outcomes)
                else:
                    state.index += 1
                progress = True
        return progress

    @staticmethod
    def _starve_rest(state: _ProcessorState, op_outcomes: dict) -> None:
        for event in state.events[state.index:]:
            if event not in op_outcomes:
                op_outcomes[event] = SimulatedOperation(
                    event.operation,
                    event.replica,
                    event.processor,
                    EventStatus.STARVED,
                )
        state.index = len(state.events)

    # ------------------------------------------------------------------
    # readiness predicates (conservative rule)
    # ------------------------------------------------------------------
    def _comm_ready(
        self, comm: ScheduledComm, op_outcomes: dict, comm_outcomes: dict
    ) -> bool:
        if comm.hop_index == 0:
            producer = self._schedule.replica(comm.source, comm.source_replica)
            return producer in op_outcomes
        return self._previous_hop(comm) in comm_outcomes

    def _operation_ready(
        self,
        event: ScheduledOperation,
        op_outcomes: dict,
        comm_outcomes: dict,
    ) -> bool:
        for predecessor in self._algorithm.predecessors(event.operation):
            local = self._feeding_local(event, predecessor)
            if local is not None and local not in op_outcomes:
                return False
            for comm in self._feeding_comms.get(
                (event.operation, event.replica, predecessor), ()
            ):
                if comm not in comm_outcomes:
                    return False
        return True

    # ------------------------------------------------------------------
    # event decisions
    # ------------------------------------------------------------------
    def _decide_comm(
        self,
        comm: ScheduledComm,
        state: _LinkState,
        op_outcomes: dict,
        comm_outcomes: dict,
        knowledge: _Knowledge,
        scenario: FailureScenario,
    ) -> None:
        self.decisions += 1
        data_ready = self._comm_data_ready(comm, op_outcomes, comm_outcomes)
        if data_ready is None:
            # The producer was silent: nothing was ever transmitted.  The
            # receiver expected the data by the comm's static date — with
            # option 2 that is exactly when it marks the sender faulty.
            if self._detection is DetectionPolicy.TIMEOUT_ARRAY:
                knowledge.learn(comm.target_processor, comm.source_processor, comm.end)
            comm_outcomes[comm] = self._comm_outcome(comm, EventStatus.SKIPPED)
            return
        duration = comm.end - comm.start
        earliest = max(state.free_at, data_ready)
        start = _transmit_window(
            scenario, comm.source_processor, comm.link, earliest, duration
        )
        if start is None:
            # Sender died between producing the data and sending it, or
            # the medium broke for good.  Either way the receiver only
            # observes a missing comm and (option 2) blames the sender —
            # a broken link thus produces the "detection mistakes" the
            # paper warns about.
            if self._detection is DetectionPolicy.TIMEOUT_ARRAY:
                knowledge.learn(comm.target_processor, comm.source_processor, comm.end)
            comm_outcomes[comm] = self._comm_outcome(comm, EventStatus.LOST)
            return
        if self._detection is DetectionPolicy.TIMEOUT_ARRAY and knowledge.knows_at(
            comm.source_processor, comm.target_processor, start
        ):
            # Option 2: do not waste the medium on a known-faulty target.
            comm_outcomes[comm] = self._comm_outcome(comm, EventStatus.SKIPPED)
            return
        end = start + duration
        delivered = scenario.is_up(comm.target_processor, end)
        comm_outcomes[comm] = self._comm_outcome(
            comm, EventStatus.COMPLETED, start=start, end=end, delivered=delivered
        )
        state.free_at = end

    def _comm_data_ready(
        self, comm: ScheduledComm, op_outcomes: dict, comm_outcomes: dict
    ) -> float | None:
        if comm.hop_index == 0:
            producer = self._schedule.replica(comm.source, comm.source_replica)
            outcome = op_outcomes[producer]
            if outcome.status is not EventStatus.COMPLETED:
                return None
            return outcome.end
        previous = comm_outcomes[self._previous_hop(comm)]
        if previous.status is not EventStatus.COMPLETED or not previous.delivered:
            return None
        return previous.end

    @staticmethod
    def _comm_outcome(
        comm: ScheduledComm,
        status: EventStatus,
        start: float | None = None,
        end: float | None = None,
        delivered: bool = False,
    ) -> SimulatedComm:
        return SimulatedComm(
            source=comm.source,
            target=comm.target,
            source_replica=comm.source_replica,
            target_replica=comm.target_replica,
            link=comm.link,
            source_processor=comm.source_processor,
            target_processor=comm.target_processor,
            hop_index=comm.hop_index,
            route=comm.route,
            status=status,
            start=start,
            end=end,
            delivered=delivered,
        )

    def _decide_operation(
        self,
        event: ScheduledOperation,
        state: _ProcessorState,
        op_outcomes: dict,
        comm_outcomes: dict,
        scenario: FailureScenario,
        relaxed: bool,
    ) -> None:
        self.decisions += 1
        duration = event.end - event.start
        # Dead processor shortcut: no execution window will ever open.
        if scenario.next_window(event.processor, state.free_at, duration) is None:
            op_outcomes[event] = SimulatedOperation(
                event.operation, event.replica, event.processor, EventStatus.LOST
            )
            return
        ready = self._input_ready(event, op_outcomes, comm_outcomes, relaxed)
        if ready is None:
            # Blocking receive that will never be satisfied: the replica
            # starves and the static executive blocks the processor.
            op_outcomes[event] = SimulatedOperation(
                event.operation, event.replica, event.processor, EventStatus.STARVED
            )
            state.blocked = True
            return
        start = scenario.next_window(
            event.processor, max(ready, state.free_at), duration
        )
        if start is None:
            op_outcomes[event] = SimulatedOperation(
                event.operation, event.replica, event.processor, EventStatus.LOST
            )
            return
        end = start + duration
        op_outcomes[event] = SimulatedOperation(
            event.operation,
            event.replica,
            event.processor,
            EventStatus.COMPLETED,
            start=start,
            end=end,
        )
        state.free_at = end

    def _input_ready(
        self,
        event: ScheduledOperation,
        op_outcomes: dict,
        comm_outcomes: dict,
        relaxed: bool,
    ) -> float | None:
        """First complete input set of one replica (None = never)."""
        ready = 0.0
        for predecessor in self._algorithm.predecessors(event.operation):
            candidates: list[float] = []
            local = self._feeding_local(event, predecessor)
            if local is not None:
                outcome = op_outcomes.get(local)
                if outcome is not None and outcome.status is EventStatus.COMPLETED:
                    candidates.append(outcome.end)
            for comm in self._feeding_comms.get(
                (event.operation, event.replica, predecessor), ()
            ):
                outcome = comm_outcomes.get(comm)
                if outcome is None:
                    if relaxed:
                        continue
                    raise SimulationError(  # pragma: no cover - guarded by _operation_ready
                        f"undecided arrival {comm!r} for {event!r}"
                    )
                if outcome.status is EventStatus.COMPLETED and outcome.delivered:
                    candidates.append(outcome.end)
            if not candidates:
                return None
            ready = max(ready, min(candidates))
        return ready

    # ------------------------------------------------------------------
    # stall relaxation
    # ------------------------------------------------------------------
    def _relaxed_fire(
        self,
        processors: dict[str, _ProcessorState],
        op_outcomes: dict,
        comm_outcomes: dict,
        scenario: FailureScenario,
    ) -> bool:
        """Fire the stalled operation with the earliest candidate start.

        Only operations whose every predecessor already has one
        delivered arrival qualify — exactly the state in which the real
        blocking-receive executive would have started them already.
        """
        best: tuple[float, str] | None = None
        for name in sorted(processors):
            state = processors[name]
            event = state.pending
            if event is None:
                continue
            ready = self._input_ready(event, op_outcomes, comm_outcomes, relaxed=True)
            if ready is None:
                continue
            candidate = (max(ready, state.free_at), name)
            if best is None or candidate < best:
                best = candidate
        if best is None:
            return False
        state = processors[best[1]]
        event = state.pending
        self._decide_operation(
            event, state, op_outcomes, comm_outcomes, scenario, relaxed=True
        )
        if state.blocked:
            self._starve_rest(state, op_outcomes)
        else:
            state.index += 1
        return True

    # ------------------------------------------------------------------
    # drain
    # ------------------------------------------------------------------
    def _finalize(
        self,
        processors: dict[str, _ProcessorState],
        links: dict[str, _LinkState],
        op_outcomes: dict,
        comm_outcomes: dict,
    ) -> None:
        """Mark every undecided event: blocked ops starve, comms are skipped."""
        for state in processors.values():
            for event in state.events[state.index:]:
                if event not in op_outcomes:
                    op_outcomes[event] = SimulatedOperation(
                        event.operation,
                        event.replica,
                        event.processor,
                        EventStatus.STARVED,
                    )
        for state in links.values():
            for comm in state.events[state.index:]:
                if comm not in comm_outcomes:
                    comm_outcomes[comm] = self._comm_outcome(
                        comm, EventStatus.SKIPPED
                    )


def _transmit_window(
    scenario: FailureScenario,
    sender: str,
    link: str,
    earliest: float,
    duration: float,
) -> float | None:
    """Earliest window where both the sender and the medium are up.

    Alternates between the two resources' next-window searches until
    they agree; each round advances past at least one down interval, so
    the search terminates.
    """
    cursor = earliest
    while True:
        sender_ok = scenario.next_window(sender, cursor, duration)
        if sender_ok is None:
            return None
        link_ok = scenario.link_next_window(link, sender_ok, duration)
        if link_ok is None:
            return None
        if link_ok == sender_ok:
            return link_ok
        cursor = link_ok


def simulate(
    schedule: Schedule,
    algorithm: AlgorithmGraph,
    scenario: FailureScenario | None = None,
    detection: DetectionPolicy = DetectionPolicy.NONE,
) -> ExecutionTrace:
    """One-call API: simulate ``schedule`` under ``scenario``."""
    return ScheduleSimulator(schedule, algorithm, detection).run(scenario)
