"""Exception hierarchy for the FTBAR reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single type at API boundaries.  Sub-classes are split
by the subsystem that raises them, which keeps error handling explicit
without forcing callers to know internal module structure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error raised by the ``repro`` package."""


class GraphError(ReproError):
    """Invalid algorithm graph: unknown operations, cycles, duplicates..."""


class ArchitectureError(ReproError):
    """Invalid architecture graph: unknown processors, dangling links..."""


class TimingError(ReproError):
    """Missing or inconsistent execution/communication time entries."""


class ConstraintError(ReproError):
    """Invalid real-time constraint specification."""


class SchedulingError(ReproError):
    """The scheduler could not produce a schedule for the given problem."""


class InfeasibleReplicationError(SchedulingError):
    """An operation cannot be replicated on ``Npf + 1`` distinct processors.

    Raised when the distribution constraints (``inf`` entries in the
    execution-time table) leave fewer than ``Npf + 1`` processors able to
    run some operation.  Per the paper, the remedy is the user's: add
    hardware or relax the failure hypothesis.
    """


class ScheduleValidationError(ReproError):
    """A produced schedule violates one of the structural invariants."""


class SimulationError(ReproError):
    """The runtime simulator was given an inconsistent scenario."""


class SerializationError(ReproError):
    """A document could not be converted to or from its JSON form."""


class FaultPlanError(ReproError):
    """A fault-injection plan document is malformed or inconsistent."""


class CacheDegradedWarning(UserWarning):
    """The schedule cache hit ``ENOSPC`` and flipped to read-only.

    A full disk must cost cache hits, never jobs: existing entries keep
    serving, new entries are silently skipped, and this warning fires
    once per cache instance instead of once per job (deduped — a
    thousand-job campaign on a full disk warns a single time).
    """


class CompiledFallbackWarning(UserWarning):
    """``compiled=True`` was combined with an option the kernel cannot model.

    The scheduler silently used to fall back to the object path; it now
    emits this structured warning so benchmark harnesses and callers
    that *expect* kernel-speed runs notice the downgrade.  The produced
    schedules are unaffected (the object path is bit-identical); only
    performance differs.
    """
