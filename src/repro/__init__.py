"""FTBAR — distributed, fault-tolerant static scheduling.

A complete reproduction of *"An Algorithm for Automatically Obtaining
Distributed and Fault-Tolerant Static Schedules"* (Girault, Kalla,
Sighireanu, Sorel — DSN 2003): the FTBAR active-replication list
scheduler, its substrates (data-flow algorithm graphs, heterogeneous
architecture graphs, timing tables, static schedule model), the HBP
baseline, a fail-silent runtime simulator and the paper's evaluation
harness.

Quickstart
----------
>>> from repro import workloads, schedule_ftbar
>>> result = schedule_ftbar(workloads.build_problem())
>>> result.rtc_satisfied
True
"""

from repro import (
    analysis,
    baselines,
    campaign,
    graphs,
    hardware,
    obs,
    schedule,
    simulation,
    timing,
    workloads,
)
from repro.baselines import (
    HBPResult,
    HBPScheduler,
    schedule_basic,
    schedule_hbp,
    schedule_non_fault_tolerant,
)
from repro.core import (
    FTBARResult,
    FTBARScheduler,
    FTBARStats,
    SchedulerOptions,
    schedule_ftbar,
)
from repro.exceptions import (
    ArchitectureError,
    ConstraintError,
    GraphError,
    InfeasibleReplicationError,
    ReproError,
    ScheduleValidationError,
    SchedulingError,
    SerializationError,
    SimulationError,
    TimingError,
)
from repro.graphs import AlgorithmGraph, AlgorithmGraphBuilder, Operation, OperationKind
from repro.hardware import Architecture, Link, LinkKind, Processor
from repro.problem import ProblemSpec
from repro.schedule import (
    Schedule,
    ScheduledComm,
    ScheduledOperation,
    assert_valid_schedule,
    render_gantt,
    schedule_table,
    validate_schedule,
)
from repro.simulation import (
    BatchScenarioEngine,
    DetectionPolicy,
    EventStatus,
    ExecutionTrace,
    FailureScenario,
    ProcessorFailure,
    ScheduleSimulator,
    simulate,
)
from repro.timing import (
    FORBIDDEN,
    CommunicationTimes,
    ExecutionTimes,
    RealTimeConstraints,
    RtcReport,
)

__version__ = "1.0.0"

__all__ = [
    "AlgorithmGraph",
    "AlgorithmGraphBuilder",
    "Architecture",
    "ArchitectureError",
    "BatchScenarioEngine",
    "CommunicationTimes",
    "ConstraintError",
    "DetectionPolicy",
    "EventStatus",
    "ExecutionTimes",
    "ExecutionTrace",
    "FORBIDDEN",
    "FTBARResult",
    "FTBARScheduler",
    "FTBARStats",
    "FailureScenario",
    "GraphError",
    "HBPResult",
    "HBPScheduler",
    "InfeasibleReplicationError",
    "Link",
    "LinkKind",
    "Operation",
    "OperationKind",
    "ProblemSpec",
    "Processor",
    "ProcessorFailure",
    "RealTimeConstraints",
    "ReproError",
    "RtcReport",
    "Schedule",
    "ScheduleSimulator",
    "ScheduleValidationError",
    "ScheduledComm",
    "ScheduledOperation",
    "SchedulerOptions",
    "SchedulingError",
    "SerializationError",
    "SimulationError",
    "TimingError",
    "analysis",
    "assert_valid_schedule",
    "baselines",
    "campaign",
    "graphs",
    "hardware",
    "obs",
    "render_gantt",
    "schedule",
    "schedule_basic",
    "schedule_ftbar",
    "schedule_hbp",
    "schedule_non_fault_tolerant",
    "schedule_table",
    "simulate",
    "simulation",
    "timing",
    "validate_schedule",
    "workloads",
]
