"""The static distributed schedule: timelines per processor and per link.

The schedule is the output of the distribution heuristic: a total order
of operation replicas on every processor and of comms on every link
(section 4.2 — the total order over each communication medium is what
makes the execution deadlock-free on order-preserving networks).

The class supports cheap snapshot/restore so ``Minimize_start_time`` can
speculatively replicate predecessors and roll back when the replication
does not pay off (step Ð of the paper's procedure).

Hot queries are backed by indexes maintained on every placement (and
captured/restored by snapshots) instead of per-query scans:

* ``makespan`` is a running aggregate (placements only extend it);
* ``replica_on`` reads a per-``(operation, processor)`` map;
* ``comms_toward`` / ``comms_for_edge`` read per-target and per-edge
  comm lists kept in event order;
* ``link_busy_intervals`` exposes the per-link busy list the planner's
  :class:`~repro.core.placement.LinkState` overlays without rebuilding.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.exceptions import ScheduleValidationError
from repro.schedule.events import ScheduledComm, ScheduledOperation

_EPSILON = 1e-9


@dataclass(frozen=True)
class ScheduleSnapshot:
    """Opaque saved state for :meth:`Schedule.restore`."""

    processor_timelines: Mapping[str, tuple[ScheduledOperation, ...]]
    link_timelines: Mapping[str, tuple[ScheduledComm, ...]]
    replicas: Mapping[str, tuple[ScheduledOperation, ...]]
    makespan: float
    replica_index: Mapping[tuple[str, str], ScheduledOperation]
    inbound_comms: Mapping[tuple[str, int], tuple[ScheduledComm, ...]]
    edge_comms: Mapping[tuple[str, str], tuple[ScheduledComm, ...]]
    link_busy: Mapping[str, tuple[tuple[float, float], ...]]


class Schedule:
    """A static, distributed, possibly replicated schedule.

    Parameters
    ----------
    processors:
        Names of the processors of the target architecture.
    links:
        Names of the communication links.
    npf:
        The processor-failure hypothesis the schedule was built for
        (0 for a non-fault-tolerant schedule).
    npl:
        The link-failure hypothesis: inter-processor transfers are
        replicated over ``npl + 1`` link-disjoint routes (0 disables
        comm replication — the paper's original engine).
    """

    def __init__(
        self,
        processors: Iterable[str],
        links: Iterable[str] = (),
        npf: int = 0,
        name: str = "schedule",
        npl: int = 0,
    ) -> None:
        self.name = name
        self.npf = npf
        self.npl = npl
        self._processor_timelines: dict[str, list[ScheduledOperation]] = {
            p: [] for p in processors
        }
        self._link_timelines: dict[str, list[ScheduledComm]] = {l: [] for l in links}
        self._replicas: dict[str, list[ScheduledOperation]] = {}
        self._makespan = 0.0
        self._replica_index: dict[tuple[str, str], ScheduledOperation] = {}
        self._inbound_comms: dict[tuple[str, int], list[ScheduledComm]] = {}
        self._edge_comms: dict[tuple[str, str], list[ScheduledComm]] = {}
        self._link_busy: dict[str, list[tuple[float, float]]] = {
            l: [] for l in self._link_timelines
        }
        # Mutation log: one tuple per placement, enough to undo it in
        # LIFO order (``mark``/``undo_to``) and to diff a macro-step's
        # dirty set in O(changes) (``mutations_since``).
        self._log: list[tuple] = []
        # Monotone change counter: bumped by every placement, undo and
        # restore, never reused — safe as a memoization key.
        self._version = 0
        # The resource sets are fixed at construction; memoize the
        # sorted name views.
        self._processor_names_view: tuple[str, ...] | None = None
        self._link_names_view: tuple[str, ...] | None = None
        if not self._processor_timelines:
            raise ScheduleValidationError("a schedule needs at least one processor")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def place_operation(
        self,
        operation: str,
        processor: str,
        start: float,
        duration: float,
        duplicated: bool = False,
    ) -> ScheduledOperation:
        """Place a new replica of ``operation`` on ``processor``.

        Rejects unknown processors, overlap with an already placed
        replica on the same processor, and double placement of the same
        operation on one processor (replicas live on *distinct*
        processors by construction).
        """
        if processor not in self._processor_timelines:
            raise ScheduleValidationError(f"unknown processor {processor!r}")
        if (operation, processor) in self._replica_index:
            raise ScheduleValidationError(
                f"operation {operation!r} already has a replica on {processor!r}"
            )
        replica_index = len(self._replicas.get(operation, ()))
        event = ScheduledOperation(
            start=start,
            end=start + duration,
            operation=operation,
            replica=replica_index,
            processor=processor,
            duplicated=duplicated,
        )
        timeline = self._processor_timelines[processor]
        index = self._insert(timeline, event, f"processor {processor!r}")
        self._replicas.setdefault(operation, []).append(event)
        self._replica_index[(operation, processor)] = event
        self._log.append(("op", processor, index, operation, self._makespan))
        self._version += 1
        if event.end > self._makespan:
            self._makespan = event.end
        return event

    def place_comm(
        self,
        source: str,
        target: str,
        source_replica: int,
        target_replica: int,
        link: str,
        start: float,
        duration: float,
        source_processor: str,
        target_processor: str,
        hop_index: int = 0,
        route: int = 0,
    ) -> ScheduledComm:
        """Place a data transfer on a link; rejects overlaps on the link."""
        if link not in self._link_timelines:
            raise ScheduleValidationError(f"unknown link {link!r}")
        event = ScheduledComm(
            start=start,
            end=start + duration,
            source=source,
            target=target,
            source_replica=source_replica,
            target_replica=target_replica,
            link=link,
            source_processor=source_processor,
            target_processor=target_processor,
            hop_index=hop_index,
            route=route,
        )
        index = self._insert(self._link_timelines[link], event, f"link {link!r}")
        self._link_busy[link].insert(index, (event.start, event.end))
        inbound_key = (target, target_replica)
        inbound = self._inbound_comms.setdefault(inbound_key, [])
        inbound_idx = self._tail_position(inbound, event)
        inbound.insert(inbound_idx, event)
        edge_key = (source, target)
        edge = self._edge_comms.setdefault(edge_key, [])
        edge_idx = self._tail_position(edge, event)
        edge.insert(edge_idx, event)
        self._log.append(
            ("comm", link, index, inbound_key, inbound_idx, edge_key, edge_idx,
             self._makespan)
        )
        self._version += 1
        if event.end > self._makespan:
            self._makespan = event.end
        return event

    @staticmethod
    def _tail_position(events: list, event) -> int:
        """``bisect_left(events, event)`` with an O(1) tail fast path.

        Append-only list scheduling lands almost every event at the
        tail; one start-date compare (``start`` is the first ordering
        field of both event dataclasses) beats a bisect and the
        generated dataclass comparison, which tuples all fields.
        """
        if not events:
            return 0
        last = events[-1]
        if last.start < event.start or (last.start == event.start and last < event):
            return len(events)
        return bisect.bisect_left(events, event)

    @staticmethod
    def _insert(timeline: list, event, resource: str) -> int:
        index = Schedule._tail_position(timeline, event)
        before = timeline[index - 1] if index > 0 else None
        after = timeline[index] if index < len(timeline) else None
        if before is not None and before.end > event.start + _EPSILON:
            raise ScheduleValidationError(
                f"{event!r} overlaps {before!r} on {resource}"
            )
        if after is not None and event.end > after.start + _EPSILON:
            raise ScheduleValidationError(
                f"{event!r} overlaps {after!r} on {resource}"
            )
        timeline.insert(index, event)
        return index

    # ------------------------------------------------------------------
    # mutation log: O(changes) rollback and dirty-set diffing
    # ------------------------------------------------------------------
    def mark(self) -> int:
        """An O(1) rollback point for :meth:`undo_to` (LIFO only).

        Marks index the mutation log, so they are cheaper than
        :meth:`snapshot` by the full size of the schedule; in exchange
        they must be unwound in LIFO order and become invalid after a
        :meth:`restore` (which resets the log).
        """
        return len(self._log)

    def version(self) -> int:
        """Monotone mutation counter (never reused across undo/restore)."""
        return self._version

    def undo_to(self, mark: int) -> None:
        """Unwind every placement made since ``mark``, newest first."""
        while len(self._log) > mark:
            self._version += 1
            entry = self._log.pop()
            if entry[0] == "op":
                _, processor, index, operation, makespan = entry
                del self._processor_timelines[processor][index]
                replicas = self._replicas[operation]
                replicas.pop()
                if not replicas:
                    del self._replicas[operation]
                del self._replica_index[(operation, processor)]
                self._makespan = makespan
            else:
                _, link, index, inbound_key, inbound_idx, edge_key, edge_idx, \
                    makespan = entry
                del self._link_timelines[link][index]
                del self._link_busy[link][index]
                del self._inbound_comms[inbound_key][inbound_idx]
                del self._edge_comms[edge_key][edge_idx]
                self._makespan = makespan

    def mutations_since(self, mark: int) -> tuple[tuple, ...]:
        """The raw log entries appended since ``mark`` (net of undos)."""
        return tuple(self._log[mark:])

    # ------------------------------------------------------------------
    # snapshot / rollback
    # ------------------------------------------------------------------
    def snapshot(self) -> ScheduleSnapshot:
        """Capture the current state; events are immutable so this is cheap."""
        return ScheduleSnapshot(
            processor_timelines={
                p: tuple(t) for p, t in self._processor_timelines.items()
            },
            link_timelines={l: tuple(t) for l, t in self._link_timelines.items()},
            replicas={o: tuple(r) for o, r in self._replicas.items()},
            makespan=self._makespan,
            replica_index=dict(self._replica_index),
            inbound_comms={k: tuple(v) for k, v in self._inbound_comms.items()},
            edge_comms={k: tuple(v) for k, v in self._edge_comms.items()},
            link_busy={l: tuple(v) for l, v in self._link_busy.items()},
        )

    def restore(self, saved: ScheduleSnapshot) -> None:
        """Roll the schedule back to a previously captured snapshot.

        Resets the mutation log: :meth:`mark` cookies taken before a
        restore must not be passed to :meth:`undo_to` afterwards.
        """
        self._log.clear()
        self._version += 1
        self._processor_timelines = {
            p: list(t) for p, t in saved.processor_timelines.items()
        }
        self._link_timelines = {l: list(t) for l, t in saved.link_timelines.items()}
        self._replicas = {o: list(r) for o, r in saved.replicas.items()}
        self._makespan = saved.makespan
        self._replica_index = dict(saved.replica_index)
        self._inbound_comms = {k: list(v) for k, v in saved.inbound_comms.items()}
        self._edge_comms = {k: list(v) for k, v in saved.edge_comms.items()}
        self._link_busy = {l: list(v) for l, v in saved.link_busy.items()}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def processor_names(self) -> tuple[str, ...]:
        """Processors of the schedule, sorted."""
        if self._processor_names_view is None:
            self._processor_names_view = tuple(sorted(self._processor_timelines))
        return self._processor_names_view

    def link_names(self) -> tuple[str, ...]:
        """Links of the schedule, sorted."""
        if self._link_names_view is None:
            self._link_names_view = tuple(sorted(self._link_timelines))
        return self._link_names_view

    def operations_on(self, processor: str) -> tuple[ScheduledOperation, ...]:
        """The static execution order of ``processor``."""
        try:
            return tuple(self._processor_timelines[processor])
        except KeyError:
            raise ScheduleValidationError(f"unknown processor {processor!r}") from None

    def comms_on(self, link: str) -> tuple[ScheduledComm, ...]:
        """The static transmission order of ``link``."""
        try:
            return tuple(self._link_timelines[link])
        except KeyError:
            raise ScheduleValidationError(f"unknown link {link!r}") from None

    def replicas_of(self, operation: str) -> tuple[ScheduledOperation, ...]:
        """All placed replicas of ``operation`` in placement order."""
        return tuple(self._replicas.get(operation, ()))

    def live_replicas(self, operation: str) -> "Sequence[ScheduledOperation]":
        """The live replica sequence of ``operation`` — zero-copy, read-only.

        The planners (object and compiled kernel) iterate predecessor
        replicas once per trial plan; this accessor skips the per-call
        tuple of :meth:`replicas_of`.  The returned sequence is the
        live index (an immutable ``()`` when the operation has no
        replicas): callers must not mutate it, and must not hold it
        across placements (its position ``i`` is replica index ``i``
        only for the current schedule state).
        """
        replicas = self._replicas.get(operation)
        return () if replicas is None else replicas

    def replica(self, operation: str, index: int) -> ScheduledOperation:
        """The ``index``-th replica of ``operation``."""
        replicas = self.replicas_of(operation)
        if index >= len(replicas):
            raise ScheduleValidationError(
                f"operation {operation!r} has no replica {index}"
            )
        return replicas[index]

    def replica_on(self, operation: str, processor: str) -> ScheduledOperation | None:
        """The replica of ``operation`` hosted by ``processor``, if any."""
        return self._replica_index.get((operation, processor))

    def scheduled_operations(self) -> tuple[str, ...]:
        """Names of all operations having at least one replica, sorted."""
        return tuple(sorted(self._replicas))

    def is_scheduled(self, operation: str) -> bool:
        """True when the operation has at least one replica."""
        return operation in self._replicas

    def all_operations(self) -> tuple[ScheduledOperation, ...]:
        """Every placed replica, ordered by (start, end, name...)."""
        events: list[ScheduledOperation] = []
        for timeline in self._processor_timelines.values():
            events.extend(timeline)
        return tuple(sorted(events))

    def all_comms(self) -> tuple[ScheduledComm, ...]:
        """Every placed comm, ordered by (start, end, ...)."""
        events: list[ScheduledComm] = []
        for timeline in self._link_timelines.values():
            events.extend(timeline)
        return tuple(sorted(events))

    def comms_toward(self, operation: str, replica: int) -> tuple[ScheduledComm, ...]:
        """All final-hop comms delivering data to one operation replica."""
        return tuple(self._inbound_comms.get((operation, replica), ()))

    def comms_for_edge(self, source: str, target: str) -> tuple[ScheduledComm, ...]:
        """All comms implementing the data-dependency ``source . target``."""
        return tuple(self._edge_comms.get((source, target), ()))

    # ------------------------------------------------------------------
    # resource availability (append-only list scheduling)
    # ------------------------------------------------------------------
    def processor_available(self, processor: str) -> float:
        """End of the last operation currently placed on ``processor``."""
        timeline = self._processor_timelines.get(processor)
        if timeline is None:
            raise ScheduleValidationError(f"unknown processor {processor!r}")
        return timeline[-1].end if timeline else 0.0

    def link_available(self, link: str) -> float:
        """End of the last comm currently placed on ``link``."""
        timeline = self._link_timelines.get(link)
        if timeline is None:
            raise ScheduleValidationError(f"unknown link {link!r}")
        return timeline[-1].end if timeline else 0.0

    def processor_availabilities(self) -> dict[str, float]:
        """``processor_available`` for every processor, in one pass."""
        return {
            p: (t[-1].end if t else 0.0)
            for p, t in self._processor_timelines.items()
        }

    def link_availabilities(self) -> dict[str, float]:
        """``link_available`` for every link, in one pass."""
        return {
            l: (t[-1].end if t else 0.0)
            for l, t in self._link_timelines.items()
        }

    def link_busy_intervals(self, link: str) -> list[tuple[float, float]]:
        """The maintained ``(start, end)`` busy list of ``link``.

        The returned list is the live index — callers must treat it as
        read-only (the planner's ``LinkState`` copies it on first write).
        """
        intervals = self._link_busy.get(link)
        if intervals is None:
            raise ScheduleValidationError(f"unknown link {link!r}")
        return intervals

    def link_gaps(self, link: str) -> tuple[tuple[float, float], ...]:
        """Idle intervals of ``link`` before its last comm (for insertion)."""
        timeline = self._link_timelines.get(link)
        if timeline is None:
            raise ScheduleValidationError(f"unknown link {link!r}")
        gaps: list[tuple[float, float]] = []
        cursor = 0.0
        for event in timeline:
            if event.start > cursor + _EPSILON:
                gaps.append((cursor, event.start))
            cursor = max(cursor, event.end)
        return tuple(gaps)

    # ------------------------------------------------------------------
    # aggregate measures
    # ------------------------------------------------------------------
    def makespan(self) -> float:
        """Completion date of the whole schedule (0 when empty)."""
        return self._makespan

    def replica_count(self) -> int:
        """Total number of placed operation replicas."""
        return len(self._replica_index)

    def replica_counts(self) -> dict[str, int]:
        """Replica count per operation (used for dirty-set diffing)."""
        return {o: len(r) for o, r in self._replicas.items()}

    def comm_count(self) -> int:
        """Total number of placed comms."""
        return sum(len(t) for t in self._link_timelines.values())

    def link_comm_counts(self) -> dict[str, int]:
        """Comm count per link (used for dirty-set diffing)."""
        return {l: len(t) for l, t in self._link_timelines.items()}

    def duplicated_count(self) -> int:
        """Number of extra replicas created by LIP duplication."""
        return sum(
            1 for r in self._replicas.values() for e in r if e.duplicated
        )

    def summary(self) -> str:
        """One-paragraph textual description of the schedule."""
        return (
            f"Schedule {self.name!r}: {self.replica_count()} replicas of "
            f"{len(self._replicas)} operations on {len(self._processor_timelines)} "
            f"processors, {self.comm_count()} comms on "
            f"{len(self._link_timelines)} links, npf={self.npf}"
            + (f", npl={self.npl}" if self.npl else "")
            + f", makespan={self.makespan():g}"
        )

    def __repr__(self) -> str:
        return (
            f"Schedule(name={self.name!r}, replicas={self.replica_count()}, "
            f"comms={self.comm_count()}, makespan={self.makespan():g})"
        )
