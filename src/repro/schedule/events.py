"""Immutable scheduled events: operation replicas and communications.

A static schedule is a set of timed events on resources: operation
replicas on processors and comms on links.  Events are frozen dataclasses
so timelines can be snapshot by shallow list copies (used by the
``Minimize_start_time`` rollback).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True, order=True, slots=True)
class ScheduledOperation:
    """One replica of an operation placed on a processor.

    ``replica`` numbers the replicas of one operation from 0; the
    ``duplicated`` flag marks extra replicas created by the
    ``Minimize_start_time`` LIP-duplication beyond the mandatory
    ``Npf + 1`` active replicas.
    """

    start: float
    end: float
    operation: str
    replica: int
    processor: str
    duplicated: bool = False

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"operation {self.operation!r} ends ({self.end}) before it "
                f"starts ({self.start})"
            )
        if self.replica < 0:
            raise ValueError("replica index must be >= 0")

    @property
    def duration(self) -> float:
        """Execution time of this replica on its processor."""
        return self.end - self.start

    def label(self) -> str:
        """Short human-readable identity, e.g. ``A/1@P3``."""
        return f"{self.operation}/{self.replica}@{self.processor}"

    def shifted(self, delta: float) -> "ScheduledOperation":
        """A copy displaced in time by ``delta`` (used by tests)."""
        return replace(self, start=self.start + delta, end=self.end + delta)


@dataclass(frozen=True, order=True, slots=True)
class ScheduledComm:
    """One data transfer on a link, from one replica to another.

    A comm carries the data-dependency ``source . target`` from the
    ``source_replica``-th replica of ``source`` (on ``source_processor``)
    toward the ``target_replica``-th replica of ``target`` (on
    ``target_processor``).  Multi-hop routes produce one comm per hop with
    increasing ``hop_index``; ``target_processor`` is then the next-hop
    relay for intermediate comms.  Under link-failure tolerance
    (``Npl >= 1``) one transfer is carried over ``Npl + 1`` link-disjoint
    routes; ``route`` numbers the copies from 0, and each copy has its
    own hop chain.
    """

    start: float
    end: float
    source: str
    target: str
    source_replica: int
    target_replica: int
    link: str
    source_processor: str
    target_processor: str
    hop_index: int = 0
    route: int = 0

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"comm {self.source!r}->{self.target!r} ends ({self.end}) "
                f"before it starts ({self.start})"
            )

    @property
    def duration(self) -> float:
        """Transmission time on the link."""
        return self.end - self.start

    @property
    def edge(self) -> tuple[str, str]:
        """The data-dependency this comm implements."""
        return (self.source, self.target)

    def label(self) -> str:
        """Short human-readable identity, e.g. ``I/0->A/1 on L1.3``."""
        return (
            f"{self.source}/{self.source_replica}->"
            f"{self.target}/{self.target_replica} on {self.link}"
        )
