"""Static schedule model: events, timelines, validation, rendering."""

from repro.schedule.events import ScheduledComm, ScheduledOperation
from repro.schedule.gantt import render_gantt, schedule_table
from repro.schedule.graphviz import (
    algorithm_to_dot,
    architecture_to_dot,
    schedule_to_dot,
)
from repro.schedule.schedule import Schedule, ScheduleSnapshot
from repro.schedule.validation import (
    ValidationReport,
    assert_valid_schedule,
    validate_schedule,
)

__all__ = [
    "Schedule",
    "ScheduleSnapshot",
    "ScheduledComm",
    "ScheduledOperation",
    "ValidationReport",
    "algorithm_to_dot",
    "architecture_to_dot",
    "assert_valid_schedule",
    "render_gantt",
    "schedule_table",
    "schedule_to_dot",
    "validate_schedule",
]
