"""JSON (de)serialization of every model in the library.

All converters go through plain ``dict``/``list`` documents so they can
be written with the standard :mod:`json` module.  Infinite execution
times (the ``Dis`` constraints) are encoded as the string ``"inf"``
because strict JSON has no infinity literal.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import SerializationError
from repro.graphs.algorithm import AlgorithmGraph
from repro.hardware.architecture import Architecture
from repro.hardware.link import Link, LinkKind
from repro.problem import ProblemSpec
from repro.schedule.schedule import Schedule
from repro.timing.comm_times import CommunicationTimes
from repro.timing.constraints import RealTimeConstraints
from repro.timing.exec_times import ExecutionTimes

_FORMAT_VERSION = 1


def _encode_time(value: float) -> float | str:
    return "inf" if math.isinf(value) else value


def _decode_time(value: Any) -> float:
    if value == "inf":
        return math.inf
    if isinstance(value, (int, float)):
        return float(value)
    raise SerializationError(f"invalid time value {value!r}")


# ----------------------------------------------------------------------
# algorithm
# ----------------------------------------------------------------------

def algorithm_to_dict(algorithm: AlgorithmGraph) -> dict:
    """Serialize an algorithm graph to a JSON-compatible document."""
    return {
        "name": algorithm.name,
        "operations": [
            {"name": op.name, "kind": op.kind.value}
            for op in algorithm.operations()
        ],
        "dependencies": [
            {
                "source": source,
                "target": target,
                "data_size": algorithm.data_size(source, target),
            }
            for source, target in algorithm.dependencies()
        ],
    }


def algorithm_from_dict(document: Mapping) -> AlgorithmGraph:
    """Rebuild an algorithm graph from its document form."""
    try:
        graph = AlgorithmGraph(document.get("name", "algorithm"))
        for entry in document["operations"]:
            graph.add_operation(entry["name"], entry.get("kind", "comp"))
        for entry in document.get("dependencies", []):
            graph.add_dependency(
                entry["source"], entry["target"], entry.get("data_size", 1.0)
            )
        return graph
    except (KeyError, TypeError) as error:
        raise SerializationError(f"invalid algorithm document: {error}") from error


# ----------------------------------------------------------------------
# architecture
# ----------------------------------------------------------------------

def architecture_to_dict(architecture: Architecture) -> dict:
    """Serialize an architecture graph to a JSON-compatible document."""
    return {
        "name": architecture.name,
        "processors": list(architecture.processor_names()),
        "links": [
            {
                "name": link.name,
                "endpoints": list(link.sorted_endpoints()),
                "kind": link.kind.value,
            }
            for link in architecture.links()
        ],
    }


def architecture_from_dict(document: Mapping) -> Architecture:
    """Rebuild an architecture from its document form."""
    try:
        architecture = Architecture(document.get("name", "architecture"))
        for processor in document["processors"]:
            architecture.add_processor(processor)
        for entry in document.get("links", []):
            architecture.add_link(
                Link(
                    entry["name"],
                    frozenset(entry["endpoints"]),
                    LinkKind(entry.get("kind", "point-to-point")),
                )
            )
        return architecture
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"invalid architecture document: {error}") from error


# ----------------------------------------------------------------------
# timing
# ----------------------------------------------------------------------

def exec_times_to_dict(table: ExecutionTimes) -> dict:
    """Serialize an execution-time table (``inf`` becomes ``"inf"``)."""
    return {
        "entries": [
            {"operation": op, "processor": proc, "time": _encode_time(duration)}
            for (op, proc), duration in sorted(table.entries().items())
        ]
    }


def exec_times_from_dict(document: Mapping) -> ExecutionTimes:
    """Rebuild an execution-time table from its document form."""
    try:
        table = ExecutionTimes()
        for entry in document["entries"]:
            table.set(
                entry["operation"], entry["processor"], _decode_time(entry["time"])
            )
        return table
    except (KeyError, TypeError) as error:
        raise SerializationError(f"invalid exec-times document: {error}") from error


def comm_times_to_dict(table: CommunicationTimes) -> dict:
    """Serialize a communication-time table."""
    return {
        "entries": [
            {
                "source": edge[0],
                "target": edge[1],
                "link": link,
                "time": duration,
            }
            for (edge, link), duration in sorted(table.entries().items())
        ]
    }


def comm_times_from_dict(document: Mapping) -> CommunicationTimes:
    """Rebuild a communication-time table from its document form."""
    try:
        table = CommunicationTimes()
        for entry in document["entries"]:
            table.set(
                (entry["source"], entry["target"]),
                entry["link"],
                _decode_time(entry["time"]),
            )
        return table
    except (KeyError, TypeError) as error:
        raise SerializationError(f"invalid comm-times document: {error}") from error


def rtc_to_dict(rtc: RealTimeConstraints) -> dict:
    """Serialize real-time constraints."""
    return {
        "global_deadline": rtc.global_deadline,
        "operation_deadlines": dict(rtc.operation_deadlines),
    }


def rtc_from_dict(document: Mapping) -> RealTimeConstraints:
    """Rebuild real-time constraints from their document form."""
    try:
        return RealTimeConstraints(
            global_deadline=document.get("global_deadline"),
            operation_deadlines=dict(document.get("operation_deadlines", {})),
        )
    except (TypeError, AttributeError) as error:
        raise SerializationError(f"invalid rtc document: {error}") from error


# ----------------------------------------------------------------------
# problem
# ----------------------------------------------------------------------

def problem_to_dict(problem: ProblemSpec) -> dict:
    """Serialize a full scheduling problem.

    ``npl`` is emitted only when nonzero so documents (and the content
    hashes derived from them) of pre-link-tolerance problems are
    byte-identical to what earlier versions produced — campaign caches
    keep their entries, while any ``npl >= 1`` problem hashes apart.
    """
    document = {
        "format_version": _FORMAT_VERSION,
        "name": problem.name,
        "npf": problem.npf,
        "algorithm": algorithm_to_dict(problem.algorithm),
        "architecture": architecture_to_dict(problem.architecture),
        "exec_times": exec_times_to_dict(problem.exec_times),
        "comm_times": comm_times_to_dict(problem.comm_times),
        "rtc": rtc_to_dict(problem.rtc),
    }
    if problem.npl:
        document["npl"] = problem.npl
    return document


def problem_from_dict(document: Mapping) -> ProblemSpec:
    """Rebuild a full scheduling problem from its document form."""
    try:
        return ProblemSpec(
            name=document.get("name", "problem"),
            npf=int(document.get("npf", 0)),
            npl=int(document.get("npl", 0)),
            algorithm=algorithm_from_dict(document["algorithm"]),
            architecture=architecture_from_dict(document["architecture"]),
            exec_times=exec_times_from_dict(document["exec_times"]),
            comm_times=comm_times_from_dict(document["comm_times"]),
            rtc=rtc_from_dict(document.get("rtc", {})),
        )
    except KeyError as error:
        raise SerializationError(f"invalid problem document: {error}") from error


# ----------------------------------------------------------------------
# schedule
# ----------------------------------------------------------------------

def schedule_to_dict(schedule: Schedule) -> dict:
    """Serialize a static schedule with all its events.

    Like :func:`problem_to_dict`, the ``npl`` hypothesis and per-comm
    ``route`` indices are emitted only when nonzero, keeping the
    documents (and content hashes) of ``npl = 0`` schedules identical
    to what earlier versions produced.
    """
    document = {
        "format_version": _FORMAT_VERSION,
        "name": schedule.name,
        "npf": schedule.npf,
        "processors": list(schedule.processor_names()),
        "links": list(schedule.link_names()),
        "operations": [
            {
                "operation": e.operation,
                "replica": e.replica,
                "processor": e.processor,
                "start": e.start,
                "end": e.end,
                "duplicated": e.duplicated,
            }
            for e in schedule.all_operations()
        ],
        "comms": [
            {
                "source": c.source,
                "target": c.target,
                "source_replica": c.source_replica,
                "target_replica": c.target_replica,
                "link": c.link,
                "start": c.start,
                "end": c.end,
                "source_processor": c.source_processor,
                "target_processor": c.target_processor,
                "hop_index": c.hop_index,
                **({"route": c.route} if c.route else {}),
            }
            for c in schedule.all_comms()
        ],
    }
    if schedule.npl:
        document["npl"] = schedule.npl
    return document


def schedule_from_dict(document: Mapping) -> Schedule:
    """Rebuild a static schedule from its document form.

    Replica indices are re-derived from placement order, so the document
    must list operations sorted by start date (which
    :func:`schedule_to_dict` guarantees).
    """
    try:
        schedule = Schedule(
            processors=document["processors"],
            links=document.get("links", []),
            npf=int(document.get("npf", 0)),
            npl=int(document.get("npl", 0)),
            name=document.get("name", "schedule"),
        )
        events = sorted(
            document.get("operations", []),
            key=lambda e: (e["operation"], e["replica"]),
        )
        for entry in events:
            schedule.place_operation(
                entry["operation"],
                entry["processor"],
                entry["start"],
                entry["end"] - entry["start"],
                duplicated=bool(entry.get("duplicated", False)),
            )
        for entry in document.get("comms", []):
            schedule.place_comm(
                entry["source"],
                entry["target"],
                int(entry["source_replica"]),
                int(entry["target_replica"]),
                entry["link"],
                entry["start"],
                entry["end"] - entry["start"],
                entry["source_processor"],
                entry["target_processor"],
                hop_index=int(entry.get("hop_index", 0)),
                route=int(entry.get("route", 0)),
            )
        return schedule
    except (KeyError, TypeError) as error:
        raise SerializationError(f"invalid schedule document: {error}") from error


# ----------------------------------------------------------------------
# content hashing
# ----------------------------------------------------------------------

CONTENT_HASH_VERSION = 1


def _canonical_value(value: Any) -> Any:
    """Normalize a document so logically-equal documents compare equal.

    Dict keys are sorted by the JSON encoder; lists are sorted by the
    canonical dump of their elements because every list in our documents
    (operations, dependencies, timing entries, links, events) is a *set*
    whose dump order depends on insertion order — the source of the
    byte-level flakiness between equal problems built in different
    orders.
    """
    if isinstance(value, Mapping):
        return {key: _canonical_value(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        normalized = [_canonical_value(item) for item in value]
        return sorted(normalized, key=lambda item: canonical_json(item))
    if isinstance(value, float) and value.is_integer() and not math.isinf(value):
        return int(value)  # 3.0 and 3 hash identically
    return value


def canonical_json(document: Any) -> str:
    """Dump a document to its canonical JSON string (stable byte-wise)."""
    return json.dumps(
        document, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def content_hash(kind: str, document: Mapping) -> str:
    """SHA-256 of the version-tagged canonical form of a document."""
    payload = (
        f"repro:{kind}:v{CONTENT_HASH_VERSION}:"
        + canonical_json(_canonical_value(document))
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def problem_content_hash(problem: ProblemSpec) -> str:
    """Stable identity of a scheduling problem.

    Two :class:`~repro.problem.ProblemSpec` instances describing the
    same problem hash identically regardless of the order operations,
    dependencies or timing entries were inserted in.  The campaign cache
    uses this as its key.
    """
    return content_hash("problem", problem_to_dict(problem))


def schedule_content_hash(schedule: Schedule) -> str:
    """Stable identity of a static schedule (event order insensitive)."""
    return content_hash("schedule", schedule_to_dict(schedule))


# ----------------------------------------------------------------------
# file helpers
# ----------------------------------------------------------------------

def save_json(document: Mapping, path: str | Path) -> None:
    """Write a document as pretty-printed JSON."""
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))


def load_json(path: str | Path) -> dict:
    """Read a JSON document from disk."""
    try:
        return json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise SerializationError(f"invalid JSON in {path}: {error}") from error
