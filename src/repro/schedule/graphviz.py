"""Graphviz DOT export of the three graph views.

Pure string builders (no graphviz dependency): the algorithm data-flow
graph, the architecture graph and the schedule (operations clustered by
processor, comms as inter-cluster edges).  Render with e.g.::

    ftbar schedule problem.json --dot out.dot
    dot -Tsvg out.dot -o out.svg
"""

from __future__ import annotations

from repro.graphs.algorithm import AlgorithmGraph
from repro.graphs.operations import OperationKind
from repro.hardware.architecture import Architecture
from repro.schedule.schedule import Schedule

_KIND_SHAPES = {
    OperationKind.COMPUTATION: "box",
    OperationKind.MEMORY: "cylinder",
    OperationKind.EXTERNAL_IO: "ellipse",
}


def _quote(name: str) -> str:
    return '"' + name.replace('"', '\\"') + '"'


def algorithm_to_dot(algorithm: AlgorithmGraph) -> str:
    """The data-flow graph; node shape encodes the operation kind."""
    lines = [f"digraph {_quote(algorithm.name)} {{", "  rankdir=TB;"]
    for operation in algorithm.operations():
        shape = _KIND_SHAPES[operation.kind]
        lines.append(f"  {_quote(operation.name)} [shape={shape}];")
    for source, target in algorithm.dependencies():
        lines.append(f"  {_quote(source)} -> {_quote(target)};")
    lines.append("}")
    return "\n".join(lines)


def architecture_to_dot(architecture: Architecture) -> str:
    """The architecture; links are labelled undirected edges."""
    lines = [f"graph {_quote(architecture.name)} {{", "  layout=circo;"]
    for processor in architecture.processor_names():
        lines.append(f"  {_quote(processor)} [shape=box3d];")
    for link in architecture.links():
        endpoints = link.sorted_endpoints()
        if link.is_bus():
            hub = f"bus_{link.name}"
            lines.append(
                f"  {_quote(hub)} [shape=point, xlabel={_quote(link.name)}];"
            )
            for endpoint in endpoints:
                lines.append(f"  {_quote(endpoint)} -- {_quote(hub)};")
        else:
            first, second = endpoints
            lines.append(
                f"  {_quote(first)} -- {_quote(second)} "
                f"[label={_quote(link.name)}];"
            )
    lines.append("}")
    return "\n".join(lines)


def schedule_to_dot(schedule: Schedule) -> str:
    """The schedule: one cluster per processor, comms across clusters.

    Node labels carry the time window; intra-processor execution order
    is drawn with invisible edges so Graphviz keeps the sequence.
    """
    lines = [f"digraph {_quote(schedule.name)} {{", "  rankdir=TB;",
             "  node [shape=box];"]
    node_ids: dict[tuple[str, int], str] = {}
    for index, processor in enumerate(schedule.processor_names()):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f"    label={_quote(processor)};")
        previous = None
        for event in schedule.operations_on(processor):
            node = f"{event.operation}_{event.replica}"
            node_ids[(event.operation, event.replica)] = node
            style = ", style=dashed" if event.duplicated else ""
            newline = "\\n"
            label = (
                f"{event.operation}/{event.replica}{newline}"
                f"[{event.start:g}, {event.end:g})"
            )
            lines.append(f"    {_quote(node)} [label={_quote(label)}{style}];")
            if previous is not None:
                lines.append(
                    f"    {_quote(previous)} -> {_quote(node)} [style=invis];"
                )
            previous = node
        lines.append("  }")
    for comm in schedule.all_comms():
        source = node_ids.get((comm.source, comm.source_replica))
        target = node_ids.get((comm.target, comm.target_replica))
        if source is None or target is None:
            continue
        label = f"{comm.link} [{comm.start:g}, {comm.end:g})"
        lines.append(
            f"  {_quote(source)} -> {_quote(target)} "
            f"[label={_quote(label)}, constraint=false];"
        )
    lines.append("}")
    return "\n".join(lines)
