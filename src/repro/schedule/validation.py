"""Structural validation of produced schedules.

The validator re-checks, independently of the scheduler, the invariants
that make a schedule correct and fault-tolerant:

* completeness — every operation of the algorithm is scheduled;
* replication — at least ``Npf + 1`` replicas on distinct processors;
* resource exclusivity — no overlap on any processor or link timeline;
* timing faithfulness — durations match the ``Exe`` tables and no
  distribution constraint is violated;
* data coverage — every replica either has a co-located predecessor
  replica or receives comms from at least ``Npf + 1`` distinct
  processors (the paper's fault-tolerance argument, section 4.1);
* time consistency — comms start after their producer ends, operations
  start after their first complete input set; static times consistent
  with the resource total orders are exactly the deadlock-freedom
  certificate of section 4.2 (any time-ordered execution is legal).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import ScheduleValidationError
from repro.graphs.algorithm import AlgorithmGraph
from repro.hardware.architecture import Architecture
from repro.schedule.events import ScheduledComm, ScheduledOperation
from repro.schedule.schedule import Schedule
from repro.timing.comm_times import CommunicationTimes
from repro.timing.exec_times import ExecutionTimes

_EPSILON = 1e-6


@dataclass
class ValidationReport:
    """Accumulated validation issues; empty means the schedule is valid."""

    issues: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no issue was recorded."""
        return not self.issues

    def add(self, message: str) -> None:
        """Record one violation."""
        self.issues.append(message)

    def __str__(self) -> str:
        if self.ok:
            return "schedule valid"
        return "schedule invalid:\n" + "\n".join(f"  - {i}" for i in self.issues)


def validate_schedule(
    schedule: Schedule,
    algorithm: AlgorithmGraph,
    architecture: Architecture,
    exec_times: ExecutionTimes,
    comm_times: CommunicationTimes,
    npf: int | None = None,
    require_replication: bool = True,
    require_direct_links: bool = False,
) -> ValidationReport:
    """Run every structural check and return the collected issues.

    ``npf`` defaults to the schedule's own failure hypothesis.  With
    ``require_direct_links`` the validator additionally rejects multi-hop
    comms, because the paper's masking argument assumes replicas exchange
    data over direct links.
    """
    report = ValidationReport()
    hypothesis = schedule.npf if npf is None else npf
    _check_completeness(report, schedule, algorithm, hypothesis, require_replication)
    _check_placements(report, schedule, exec_times)
    _check_resource_exclusivity(report, schedule)
    _check_comms(
        report, schedule, algorithm, architecture, comm_times, require_direct_links
    )
    _check_data_coverage(report, schedule, algorithm, hypothesis, require_replication)
    return report


def assert_valid_schedule(
    schedule: Schedule,
    algorithm: AlgorithmGraph,
    architecture: Architecture,
    exec_times: ExecutionTimes,
    comm_times: CommunicationTimes,
    npf: int | None = None,
    require_replication: bool = True,
    require_direct_links: bool = False,
) -> None:
    """Like :func:`validate_schedule` but raising on the first report."""
    report = validate_schedule(
        schedule,
        algorithm,
        architecture,
        exec_times,
        comm_times,
        npf=npf,
        require_replication=require_replication,
        require_direct_links=require_direct_links,
    )
    if not report.ok:
        raise ScheduleValidationError(str(report))


# ----------------------------------------------------------------------
# individual checks
# ----------------------------------------------------------------------

def _check_completeness(
    report: ValidationReport,
    schedule: Schedule,
    algorithm: AlgorithmGraph,
    npf: int,
    require_replication: bool,
) -> None:
    required = npf + 1 if require_replication else 1
    for operation in algorithm.operation_names():
        replicas = schedule.replicas_of(operation)
        if not replicas:
            report.add(f"operation {operation!r} is not scheduled")
            continue
        if len(replicas) < required:
            report.add(
                f"operation {operation!r} has {len(replicas)} replicas, "
                f"needs at least {required}"
            )
        processors = [r.processor for r in replicas]
        if len(set(processors)) != len(processors):
            report.add(
                f"operation {operation!r} has several replicas on one "
                f"processor: {sorted(processors)}"
            )
    for operation in schedule.scheduled_operations():
        if operation not in algorithm:
            report.add(f"scheduled operation {operation!r} is not in the algorithm")


def _check_placements(
    report: ValidationReport,
    schedule: Schedule,
    exec_times: ExecutionTimes,
) -> None:
    for event in schedule.all_operations():
        try:
            expected = exec_times.time_of(event.operation, event.processor)
        except Exception:
            report.add(
                f"no execution time for {event.label()} — table incomplete"
            )
            continue
        if math.isinf(expected):
            report.add(
                f"{event.label()} violates a distribution constraint "
                f"(forbidden pair)"
            )
        elif abs(event.duration - expected) > _EPSILON:
            report.add(
                f"{event.label()} lasts {event.duration:g}, table says {expected:g}"
            )
        if event.start < -_EPSILON:
            report.add(f"{event.label()} starts before time 0")


def _check_resource_exclusivity(report: ValidationReport, schedule: Schedule) -> None:
    for processor in schedule.processor_names():
        _check_no_overlap(
            report, schedule.operations_on(processor), f"processor {processor}"
        )
    for link in schedule.link_names():
        _check_no_overlap(report, schedule.comms_on(link), f"link {link}")


def _check_no_overlap(report: ValidationReport, events, resource: str) -> None:
    for before, after in zip(events, events[1:]):
        if before.end > after.start + _EPSILON:
            report.add(
                f"{resource}: {before.label()} (ends {before.end:g}) overlaps "
                f"{after.label()} (starts {after.start:g})"
            )


def _check_comms(
    report: ValidationReport,
    schedule: Schedule,
    algorithm: AlgorithmGraph,
    architecture: Architecture,
    comm_times: CommunicationTimes,
    require_direct_links: bool,
) -> None:
    comms = schedule.all_comms()
    for comm in comms:
        if not algorithm.has_dependency(comm.source, comm.target):
            report.add(f"comm {comm.label()} has no matching data-dependency")
            continue
        link = architecture.link(comm.link)
        if not link.attaches(comm.source_processor):
            report.add(
                f"comm {comm.label()}: {comm.source_processor!r} is not on "
                f"link {comm.link!r}"
            )
        if not link.attaches(comm.target_processor):
            report.add(
                f"comm {comm.label()}: {comm.target_processor!r} is not on "
                f"link {comm.link!r}"
            )
        expected = comm_times.time_of(comm.edge, comm.link)
        if abs(comm.duration - expected) > _EPSILON:
            report.add(
                f"comm {comm.label()} lasts {comm.duration:g}, "
                f"table says {expected:g}"
            )
        if require_direct_links and comm.hop_index > 0:
            report.add(
                f"comm {comm.label()} is multi-hop (hop {comm.hop_index}); "
                f"direct links required for the fault-tolerance guarantee"
            )
        if comm.hop_index == 0:
            producer = schedule.replica_on(comm.source, comm.source_processor)
            if producer is None:
                report.add(
                    f"comm {comm.label()} sent from {comm.source_processor!r} "
                    f"where no replica of {comm.source!r} lives"
                )
            elif comm.start < producer.end - _EPSILON:
                report.add(
                    f"comm {comm.label()} starts at {comm.start:g} before its "
                    f"producer ends at {producer.end:g}"
                )
        else:
            previous = _previous_hop(comms, comm)
            if previous is None:
                report.add(f"comm {comm.label()} misses its hop {comm.hop_index - 1}")
            elif comm.start < previous.end - _EPSILON:
                report.add(
                    f"comm {comm.label()} starts before its previous hop ends"
                )


def _previous_hop(comms, comm: ScheduledComm) -> ScheduledComm | None:
    for other in comms:
        if (
            other.edge == comm.edge
            and other.source_replica == comm.source_replica
            and other.target_replica == comm.target_replica
            and other.route == comm.route
            and other.hop_index == comm.hop_index - 1
        ):
            return other
    return None


def _check_data_coverage(
    report: ValidationReport,
    schedule: Schedule,
    algorithm: AlgorithmGraph,
    npf: int,
    require_replication: bool,
) -> None:
    required_sources = npf + 1 if require_replication else 1
    for operation in algorithm.operation_names():
        predecessors = algorithm.predecessors(operation)
        for replica in schedule.replicas_of(operation):
            ready = 0.0
            for predecessor in predecessors:
                arrival = _first_arrival(report, schedule, replica, predecessor,
                                         required_sources)
                if arrival is None:
                    continue
                ready = max(ready, arrival)
            if replica.start < ready - _EPSILON:
                report.add(
                    f"{replica.label()} starts at {replica.start:g} before its "
                    f"first complete input set at {ready:g}"
                )


def _first_arrival(
    report: ValidationReport,
    schedule: Schedule,
    replica: ScheduledOperation,
    predecessor: str,
    required_sources: int,
) -> float | None:
    local = schedule.replica_on(predecessor, replica.processor)
    if local is not None and local.end <= replica.start + _EPSILON:
        # Intra-processor communication: not replicated, zero cost (§4.1).
        # A co-located replica placed *after* this one (a later LIP
        # duplication for another consumer) does not feed it — the data
        # then arrives through comms like for any remote predecessor.
        return local.end
    deliveries = [
        c
        for c in schedule.comms_toward(replica.operation, replica.replica)
        if c.source == predecessor and c.target_processor == replica.processor
    ]
    if not deliveries:
        report.add(
            f"{replica.label()} receives nothing for predecessor "
            f"{predecessor!r} and has no local replica"
        )
        return None
    producers: set[str] = set()
    for comm in deliveries:
        if comm.hop_index == 0:
            producers.add(comm.source_processor)
        else:
            # Relayed delivery: the original producer is the processor of
            # the sending replica, not the relay.
            origin = schedule.replicas_of(predecessor)
            if comm.source_replica < len(origin):
                producers.add(origin[comm.source_replica].processor)
    distinct = len(producers)
    if distinct < required_sources:
        report.add(
            f"{replica.label()}: data of {predecessor!r} comes from only "
            f"{distinct} processor(s), {required_sources} required to "
            f"mask failures"
        )
    return min(c.end for c in deliveries)
