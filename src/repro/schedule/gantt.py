"""Text rendering of static schedules.

Two complementary views are provided:

* :func:`render_gantt` — an ASCII Gantt chart, one row per processor and
  (optionally) per link, mirroring the figures of section 4.3;
* :func:`schedule_table` — a plain event table (resource, event, start,
  end), convenient in logs and easy to diff in tests.
"""

from __future__ import annotations

from repro.schedule.schedule import Schedule


def render_gantt(
    schedule: Schedule,
    width: int = 100,
    with_links: bool = True,
    time_ruler: bool = True,
) -> str:
    """Draw the schedule as an ASCII Gantt chart.

    Every event paints a ``[label]`` box whose position and width are
    proportional to its start date and duration.  Labels are truncated to
    the box width; boxes of very short events degrade to a single ``#``.
    """
    if width < 20:
        raise ValueError("width must be at least 20 columns")
    makespan = schedule.makespan()
    label_width = max(
        [len(n) for n in schedule.processor_names()]
        + [len(n) for n in schedule.link_names()]
        + [4]
    )
    canvas_width = width - label_width - 2
    lines: list[str] = []
    if makespan <= 0:
        return "(empty schedule)"
    scale = canvas_width / makespan

    def paint(events, label_of) -> str:
        canvas = [" "] * canvas_width
        for event in events:
            start = min(int(round(event.start * scale)), canvas_width - 1)
            end = min(int(round(event.end * scale)), canvas_width)
            span = max(end - start, 1)
            text = label_of(event)
            box = f"[{text}]" if span >= len(text) + 2 else "#" * span
            box = box[:span].ljust(span, "=") if span >= 3 else box[:span]
            for offset, char in enumerate(box):
                if start + offset < canvas_width:
                    canvas[start + offset] = char
        return "".join(canvas)

    for processor in schedule.processor_names():
        row = paint(
            schedule.operations_on(processor),
            lambda e: f"{e.operation}/{e.replica}",
        )
        lines.append(f"{processor.ljust(label_width)} |{row}")
    if with_links:
        for link in schedule.link_names():
            row = paint(
                schedule.comms_on(link),
                lambda e: f"{e.source}>{e.target}",
            )
            lines.append(f"{link.ljust(label_width)} |{row}")
    if time_ruler:
        ruler = _time_ruler(label_width, canvas_width, makespan)
        lines.append(ruler)
    return "\n".join(lines)


def _time_ruler(label_width: int, canvas_width: int, makespan: float) -> str:
    ruler = [" "] * canvas_width
    ticks = 5
    for i in range(ticks + 1):
        position = min(int(round(i * canvas_width / ticks)), canvas_width - 1)
        stamp = f"{makespan * i / ticks:.4g}"
        for offset, char in enumerate(stamp):
            if position + offset < canvas_width:
                ruler[position + offset] = char
    return " " * label_width + " |" + "".join(ruler)


def schedule_table(schedule: Schedule) -> str:
    """A sorted, aligned event table of the whole schedule."""
    rows: list[tuple[str, str, float, float]] = []
    for processor in schedule.processor_names():
        for event in schedule.operations_on(processor):
            marker = " (dup)" if event.duplicated else ""
            rows.append(
                (processor, f"{event.operation}/{event.replica}{marker}",
                 event.start, event.end)
            )
    for link in schedule.link_names():
        for comm in schedule.comms_on(link):
            rows.append((link, comm.label(), comm.start, comm.end))
    rows.sort(key=lambda r: (r[2], r[0], r[1]))
    if not rows:
        return "(empty schedule)"
    resource_width = max(len(r[0]) for r in rows)
    event_width = max(len(r[1]) for r in rows)
    lines = [
        f"{'resource'.ljust(resource_width)}  {'event'.ljust(event_width)}  "
        f"{'start':>8}  {'end':>8}"
    ]
    for resource, event, start, end in rows:
        lines.append(
            f"{resource.ljust(resource_width)}  {event.ljust(event_width)}  "
            f"{start:8.3f}  {end:8.3f}"
        )
    return "\n".join(lines)
