"""Minimal in-tree PEP 517 build backend (stdlib only).

The execution environment for this reproduction is offline and has no
``wheel`` package, so neither the default setuptools backend (which
needs to download build dependencies into its isolation environment)
nor its PEP 660 editable path (which needs ``wheel``) can run.  This
backend builds the project's wheels itself with nothing but the
standard library, and declares ``requires = []`` so build isolation
never touches the network:

* :func:`build_wheel` packs ``src/repro`` into a regular purelib wheel;
* :func:`build_editable` emits a PEP 660 wheel containing a single
  ``.pth`` file pointing at ``src`` (the classic path-style editable
  install).

The metadata below mirrors what ``setup.cfg`` would have declared.
"""

from __future__ import annotations

import base64
import csv
import hashlib
import io
import os
import zipfile

NAME = "repro"
VERSION = "1.0.0"
SUMMARY = (
    "FTBAR: distributed and fault-tolerant static scheduling "
    "(reproduction of Girault et al., DSN 2003)"
)
REQUIRES = ["networkx>=2.6"]
TAG = "py3-none-any"

_METADATA = "\n".join(
    [
        "Metadata-Version: 2.1",
        f"Name: {NAME}",
        f"Version: {VERSION}",
        f"Summary: {SUMMARY}",
        "License: MIT",
        "Requires-Python: >=3.10",
        *[f"Requires-Dist: {req}" for req in REQUIRES],
        "",
    ]
)

_WHEEL_FILE = "\n".join(
    [
        "Wheel-Version: 1.0",
        "Generator: repro-local-backend (1.0.0)",
        "Root-Is-Purelib: true",
        f"Tag: {TAG}",
        "",
    ]
)

_ENTRY_POINTS = "\n".join(
    [
        "[console_scripts]",
        "ftbar = repro.cli:main",
        "",
    ]
)


def _dist_info_name() -> str:
    return f"{NAME}-{VERSION}.dist-info"


def _record_entry(path: str, data: bytes) -> tuple[str, str, int]:
    digest = hashlib.sha256(data).digest()
    encoded = base64.urlsafe_b64encode(digest).rstrip(b"=").decode("ascii")
    return (path, f"sha256={encoded}", len(data))


def _write_wheel(wheel_path: str, files: dict[str, bytes]) -> None:
    dist_info = _dist_info_name()
    files = dict(files)
    files[f"{dist_info}/METADATA"] = _METADATA.encode()
    files[f"{dist_info}/WHEEL"] = _WHEEL_FILE.encode()
    files[f"{dist_info}/entry_points.txt"] = _ENTRY_POINTS.encode()
    files[f"{dist_info}/top_level.txt"] = b"repro\n"
    record = io.StringIO()
    writer = csv.writer(record, lineterminator="\n")
    for path, data in sorted(files.items()):
        writer.writerow(_record_entry(path, data))
    writer.writerow((f"{dist_info}/RECORD", "", ""))
    files[f"{dist_info}/RECORD"] = record.getvalue().encode()
    with zipfile.ZipFile(wheel_path, "w", zipfile.ZIP_DEFLATED) as archive:
        for path, data in sorted(files.items()):
            archive.writestr(path, data)


def _package_files() -> dict[str, bytes]:
    root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
    collected: dict[str, bytes] = {}
    for directory, _, names in os.walk(os.path.join(root, "repro")):
        for name in names:
            if name.endswith((".pyc", ".pyo")):
                continue
            full = os.path.join(directory, name)
            archive_path = os.path.relpath(full, root).replace(os.sep, "/")
            with open(full, "rb") as handle:
                collected[archive_path] = handle.read()
    return collected


# ----------------------------------------------------------------------
# PEP 517 hooks
# ----------------------------------------------------------------------

def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []


def get_requires_for_build_sdist(config_settings=None):
    return []


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    wheel_name = f"{NAME}-{VERSION}-{TAG}.whl"
    _write_wheel(os.path.join(wheel_directory, wheel_name), _package_files())
    return wheel_name


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    source = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
    wheel_name = f"{NAME}-{VERSION}-{TAG}.whl"
    files = {f"{NAME}.pth": (source + "\n").encode()}
    _write_wheel(os.path.join(wheel_directory, wheel_name), files)
    return wheel_name


def build_sdist(sdist_directory, config_settings=None):
    raise NotImplementedError(
        "sdists are not needed in the offline reproduction environment"
    )
