"""Campaign and CLI integration of the Npl (link-failure) axis.

The grid gains an ``npls`` dimension; jobs carry the effective ``npl``
and their content digests must never collide across ``npl`` values
(the cache-key regression the ISSUE pins), and the ``reliability``
measure certifies combined processor+link subsets.
"""

import json

from repro.campaign.jobs import build_problem, execute_job, expand_jobs
from repro.campaign.spec import (
    CampaignSpec,
    ReliabilitySpec,
    WorkloadSpec,
    campaign_from_dict,
    campaign_to_dict,
)
from repro.cli import main
from repro.schedule.serialization import problem_content_hash


def _spec(**overrides) -> CampaignSpec:
    values = dict(
        name="npl-grid",
        workloads=(WorkloadSpec(family="random", size=10),),
        topologies=("ring",),
        processors=(4,),
        npfs=(0,),
        npls=(0, 1),
        ccrs=(0.3,),
        seeds=(0,),
        measures=("ftbar",),
    )
    values.update(overrides)
    return CampaignSpec(**values)


class TestNplAxis:
    def test_grid_size_counts_the_npl_axis(self):
        assert _spec().grid_size == 2

    def test_jobs_carry_npl_and_distinct_digests(self):
        jobs = expand_jobs(_spec())
        assert [job.npl for job in jobs] == [0, 1]
        assert jobs[0].digest != jobs[1].digest
        assert jobs[0].coordinate()["npl"] == 0
        assert jobs[1].coordinate()["npl"] == 1

    def test_npl_never_collides_in_the_problem_hash(self):
        workload = WorkloadSpec(family="random", size=10)
        digests = {
            problem_content_hash(
                build_problem(workload, "ring", 4, 0, 0.3, 0, npl=npl)
            )
            for npl in (0, 1, 2)
        }
        assert len(digests) == 3

    def test_spec_round_trips_npls(self):
        spec = _spec()
        document = campaign_to_dict(spec)
        assert document["npls"] == (0, 1)
        rebuilt = campaign_from_dict(json.loads(json.dumps(document)))
        assert rebuilt.npls == (0, 1)

    def test_npls_default_is_zero(self):
        document = campaign_to_dict(_spec())
        del document["npls"]
        assert campaign_from_dict(document).npls == (0,)


class TestDigestStability:
    def test_unset_link_knobs_keep_pre_link_tolerance_digests(self):
        """A reliability spec predating link tolerance hashes as before."""
        from dataclasses import asdict

        from repro.campaign.jobs import job_digest
        from repro.schedule.serialization import content_hash, problem_to_dict

        workload = WorkloadSpec(family="random", size=10)
        problem = build_problem(workload, "ring", 4, 0, 0.3, 0)
        spec = ReliabilitySpec(probabilities=(0.05,))
        digest = job_digest(problem, {}, ("ftbar", "reliability"), (), spec)
        # The historical document shape: no link knobs and no sampled
        # certification knobs at all.
        legacy_reliability = {
            key: value
            for key, value in asdict(spec).items()
            if key not in (
                "max_link_failures", "link_probability",
                "method", "confidence", "budget", "seed",
            )
        }
        legacy = content_hash(
            "job",
            {
                "problem": problem_to_dict(problem),
                "options": {},
                "measures": ["ftbar", "reliability"],
                "failures": [],
                "reliability": legacy_reliability,
            },
        )
        assert digest == legacy

    def test_set_link_knobs_change_the_digest(self):
        from repro.campaign.jobs import job_digest

        workload = WorkloadSpec(family="random", size=10)
        problem = build_problem(workload, "ring", 4, 0, 0.3, 0)
        plain = job_digest(
            problem, {}, ("reliability",), (),
            ReliabilitySpec(probabilities=(0.05,)),
        )
        combined = job_digest(
            problem, {}, ("reliability",), (),
            ReliabilitySpec(probabilities=(0.05,), max_link_failures=1),
        )
        assert plain != combined


class TestCombinedReliabilityMeasure:
    def test_record_reports_combined_levels(self):
        spec = _spec(
            npls=(1,),
            measures=("ftbar", "reliability"),
            reliability=ReliabilitySpec(probabilities=(0.05,)),
        )
        (job,) = expand_jobs(spec)
        record = execute_job(job)["record"]["reliability"]
        assert record["certified"]
        assert record["npl"] == 1
        combined = [
            level for level in record["levels"] if level.get("link_failures")
        ]
        assert combined  # the link dimension was enumerated
        assert all(level["masked"] == level["total"] for level in combined
                   if level["failures"] <= 0 and level["link_failures"] <= 1)

    def test_npl_zero_record_keeps_historical_shape(self):
        spec = _spec(
            npls=(0,),
            measures=("ftbar", "reliability"),
            reliability=ReliabilitySpec(probabilities=(0.05,)),
        )
        (job,) = expand_jobs(spec)
        record = execute_job(job)["record"]["reliability"]
        assert "npl" not in record
        assert all("link_failures" not in level for level in record["levels"])

    def test_link_probability_widens_the_sweep(self):
        spec = _spec(
            npls=(1,),
            measures=("ftbar", "reliability"),
            reliability=ReliabilitySpec(
                probabilities=(0.05,), link_probability=0.02
            ),
        )
        (job,) = expand_jobs(spec)
        record = execute_job(job)["record"]["reliability"]
        point = record["sweep"][0]
        assert 0.0 < point["reliability"] <= 1.0
        assert point["guaranteed_lower_bound"] <= point["reliability"]


class TestHeatmapNplRows:
    def test_heatmap_and_report_separate_npl_rows(self, tmp_path):
        from repro.campaign.runner import (
            campaign_report,
            reliability_heatmap,
            run_campaign,
        )
        from repro.campaign.store import ResultStore

        spec = _spec(
            npls=(0, 1),
            measures=("ftbar", "non_ft", "reliability"),
            reliability=ReliabilitySpec(probabilities=(0.05,)),
        )
        store = tmp_path / "results.jsonl"
        run_campaign(spec, store=store, cache=None, progress=None)
        heatmap = reliability_heatmap(spec, ResultStore(store), "certified")
        assert "npf/npl" in heatmap
        assert "0/0" in heatmap and "0/1" in heatmap
        report = campaign_report(spec, ResultStore(store))
        assert "npf/npl" in report

    def test_processor_only_campaign_keeps_historical_labels(self, tmp_path):
        from repro.campaign.runner import reliability_heatmap, run_campaign
        from repro.campaign.store import ResultStore

        spec = _spec(
            npls=(0,),
            measures=("ftbar", "reliability"),
            reliability=ReliabilitySpec(probabilities=(0.05,)),
        )
        store = tmp_path / "results.jsonl"
        run_campaign(spec, store=store, cache=None, progress=None)
        heatmap = reliability_heatmap(spec, ResultStore(store), "reliability")
        assert "npf \\ q" in heatmap
        assert "npf/npl" not in heatmap


class TestCertifyCliNpl:
    def test_certify_npl_override_and_compare(self, tmp_path, capsys):
        from repro.schedule.serialization import problem_to_dict, save_json

        problem = build_problem(
            WorkloadSpec(family="random", size=10), "ring", 4, 0, 0.3, 0
        )
        path = tmp_path / "ring.json"
        save_json(problem_to_dict(problem), path)
        code = main(["certify", str(path), "--npl", "1", "--compare"])
        out = capsys.readouterr().out
        assert code == 0
        assert "npl=1" in out
        assert "link(s)" in out
        assert "engines agree" in out

    def test_certify_links_flag_widens_enumeration(self, tmp_path, capsys):
        from repro.schedule.serialization import problem_to_dict, save_json

        problem = build_problem(
            WorkloadSpec(family="random", size=8), "fully_connected", 3, 1, 1.0, 0
        )
        path = tmp_path / "fc.json"
        save_json(problem_to_dict(problem), path)
        code = main(["certify", str(path), "--links", "1"])
        out = capsys.readouterr().out
        assert "link(s)" in out  # combined levels despite npl = 0
        assert code in (0, 1)  # verdict depends on incidental tolerance

    def test_schedule_npl_flag(self, tmp_path, capsys):
        from repro.schedule.serialization import problem_to_dict, save_json

        problem = build_problem(
            WorkloadSpec(family="random", size=8), "ring", 4, 0, 0.3, 0
        )
        path = tmp_path / "ring.json"
        save_json(problem_to_dict(problem), path)
        code = main(["schedule", str(path), "--npl", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "npl=1" in out


class TestExampleProblems:
    def test_ring_example_certifies_combined(self, capsys):
        code = main(["certify", "examples/problem_ring4_npl1.json", "--compare"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CERTIFIED" in out
        assert "engines agree" in out

    def test_fc_example_certifies_combined_npf1_npl1(self, capsys):
        code = main(["certify", "examples/problem_fc4_npf1_npl1.json"])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 crash(es) + 1 link(s): 24/24 subsets masked" in out
