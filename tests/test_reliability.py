"""Tests for the reliability analysis (exhaustive certificates)."""

import math

import pytest

from repro.analysis.reliability import (
    event_boundary_times,
    fault_tolerance_certificate,
    mean_time_to_failure_iterations,
    schedule_reliability,
)
from repro.core.ftbar import schedule_ftbar
from repro.exceptions import SimulationError
from repro.graphs.builder import diamond, linear_chain

from tests.util import uniform_problem


def ft_result(npf: int = 1, processors: int = 3):
    problem = uniform_problem(diamond(), processors=processors, npf=npf)
    return schedule_ftbar(problem)


class TestCertificate:
    def test_npf1_schedule_is_certified(self):
        result = ft_result(npf=1)
        certificate = fault_tolerance_certificate(
            result.schedule, result.expanded_algorithm
        )
        assert certificate.certified
        assert certificate.breaking_subsets == []

    def test_levels_cover_zero_to_npf_plus_one(self):
        result = ft_result(npf=1)
        certificate = fault_tolerance_certificate(
            result.schedule, result.expanded_algorithm
        )
        assert [level.failures for level in certificate.levels] == [0, 1, 2]
        assert certificate.level(0).fully_masked
        assert certificate.level(1).fully_masked

    def test_all_crashes_break_everything(self):
        # Crashing all three processors is never masked.
        result = ft_result(npf=1)
        certificate = fault_tolerance_certificate(
            result.schedule, result.expanded_algorithm, max_failures=3
        )
        assert certificate.level(3).masked_subsets == 0

    def test_npf0_schedule_not_certified_for_one_crash(self):
        result = ft_result(npf=0)
        certificate = fault_tolerance_certificate(
            result.schedule, result.expanded_algorithm, max_failures=1
        )
        # Some single crash must break an unreplicated schedule.
        assert not certificate.level(1).fully_masked
        # ...but npf=0 only promises the crash-free level, so the
        # certificate itself holds.
        assert certificate.certified

    def test_multiple_crash_times(self):
        result = ft_result(npf=1)
        times = event_boundary_times(result.schedule, limit=8)
        certificate = fault_tolerance_certificate(
            result.schedule, result.expanded_algorithm, crash_times=times
        )
        assert certificate.certified

    def test_str_rendering(self):
        result = ft_result(npf=1)
        certificate = fault_tolerance_certificate(
            result.schedule, result.expanded_algorithm
        )
        text = str(certificate)
        assert "CERTIFIED" in text
        assert "1 crash(es)" in text


class TestEventBoundaryTimes:
    def test_includes_zero_and_is_sorted(self):
        result = ft_result(npf=1)
        times = event_boundary_times(result.schedule)
        assert times[0] == 0.0
        assert list(times) == sorted(times)

    def test_limit_respected(self):
        result = ft_result(npf=1)
        assert len(event_boundary_times(result.schedule, limit=4)) <= 4


class TestReliability:
    def test_perfect_processors_give_reliability_one(self):
        result = ft_result(npf=1)
        report = schedule_reliability(
            result.schedule,
            result.expanded_algorithm,
            {p: 0.0 for p in result.schedule.processor_names()},
        )
        assert report.reliability == pytest.approx(1.0)

    def test_reliability_at_least_guaranteed_bound(self):
        result = ft_result(npf=1)
        report = schedule_reliability(
            result.schedule,
            result.expanded_algorithm,
            {p: 0.1 for p in result.schedule.processor_names()},
        )
        assert report.reliability >= report.guaranteed_lower_bound - 1e-12
        # npf=1 on 3 processors with q=0.1:
        # P(<=1 failure) = 0.9^3 + 3*0.1*0.9^2 = 0.972
        assert report.guaranteed_lower_bound == pytest.approx(0.972)

    def test_replication_beats_no_replication(self):
        probabilities = {"P1": 0.1, "P2": 0.1, "P3": 0.1}
        replicated = ft_result(npf=1)
        plain = ft_result(npf=0)
        reliable = schedule_reliability(
            replicated.schedule, replicated.expanded_algorithm, probabilities
        )
        fragile = schedule_reliability(
            plain.schedule, plain.expanded_algorithm, probabilities
        )
        assert reliable.reliability > fragile.reliability

    def test_missing_probability_rejected(self):
        result = ft_result(npf=1)
        with pytest.raises(SimulationError, match="no failure probability"):
            schedule_reliability(
                result.schedule, result.expanded_algorithm, {"P1": 0.1}
            )

    def test_invalid_probability_rejected(self):
        result = ft_result(npf=1)
        with pytest.raises(SimulationError, match="must be in"):
            schedule_reliability(
                result.schedule,
                result.expanded_algorithm,
                {p: 1.5 for p in result.schedule.processor_names()},
            )

    def test_subset_count(self):
        result = ft_result(npf=1)
        report = schedule_reliability(
            result.schedule,
            result.expanded_algorithm,
            {p: 0.01 for p in result.schedule.processor_names()},
        )
        assert report.evaluated_subsets == 8  # 2^3


class TestMttf:
    def test_geometric_formula(self):
        assert mean_time_to_failure_iterations(0.9) == pytest.approx(10.0)
        assert math.isinf(mean_time_to_failure_iterations(1.0))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            mean_time_to_failure_iterations(1.5)


class TestChainWorkload:
    def test_certificate_on_chain_with_npf2(self):
        problem = uniform_problem(linear_chain(3), processors=4, npf=2)
        result = schedule_ftbar(problem)
        certificate = fault_tolerance_certificate(
            result.schedule, result.expanded_algorithm
        )
        assert certificate.certified
        assert certificate.level(2).fully_masked
