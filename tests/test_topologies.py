"""Unit tests for the canned architecture topologies."""

import pytest

from repro.exceptions import ArchitectureError
from repro.hardware.topologies import fully_connected, ring, single_bus, star


class TestFullyConnected:
    def test_paper_naming(self):
        arc = fully_connected(3)
        assert arc.processor_names() == ("P1", "P2", "P3")
        assert arc.link_names() == ("L1.2", "L1.3", "L2.3")

    def test_link_count(self):
        arc = fully_connected(5)
        assert len(arc.link_names()) == 10

    def test_is_fully_connected(self):
        assert fully_connected(4).is_fully_connected()

    def test_single_processor(self):
        arc = fully_connected(1)
        assert arc.link_names() == ()
        arc.validate()

    def test_zero_rejected(self):
        with pytest.raises(ArchitectureError):
            fully_connected(0)

    def test_custom_prefixes(self):
        arc = fully_connected(2, prefix="N", link_prefix="W")
        assert arc.processor_names() == ("N1", "N2")
        assert arc.link_names() == ("W1.2",)


class TestSingleBus:
    def test_shape(self):
        arc = single_bus(4)
        assert len(arc.link_names()) == 1
        assert arc.link("BUS").is_bus()
        assert len(arc.link("BUS").endpoints) == 4

    def test_every_pair_connected_by_bus(self):
        arc = single_bus(3)
        assert arc.is_fully_connected()

    def test_single_processor_has_no_bus(self):
        assert single_bus(1).link_names() == ()


class TestRing:
    def test_shape(self):
        arc = ring(4)
        assert len(arc.link_names()) == 4
        assert arc.neighbors("P1") == ("P2", "P4")

    def test_two_processors_single_link(self):
        arc = ring(2)
        assert arc.link_names() == ("L1.2",)

    def test_routes_around_ring(self):
        arc = ring(5)
        assert arc.hop_count("P1", "P3") == 2

    def test_validates(self):
        ring(6).validate()


class TestStar:
    def test_default_hub(self):
        arc = star(4)
        assert arc.neighbors("P1") == ("P2", "P3", "P4")
        assert arc.neighbors("P2") == ("P1",)

    def test_custom_hub(self):
        arc = star(3, hub="P2")
        assert arc.neighbors("P2") == ("P1", "P3")

    def test_unknown_hub_rejected(self):
        with pytest.raises(ArchitectureError, match="hub"):
            star(3, hub="P9")

    def test_leaf_to_leaf_routes_via_hub(self):
        arc = star(4)
        assert arc.hop_count("P2", "P3") == 2
