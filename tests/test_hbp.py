"""Tests for the HBP (Height-Based Partitioning) baseline."""

import pytest

from repro.baselines.hbp import HBPScheduler, schedule_hbp
from repro.exceptions import InfeasibleReplicationError, SchedulingError
from repro.graphs.algorithm import AlgorithmGraph
from repro.graphs.builder import diamond, fork_join, linear_chain
from repro.graphs.operations import OperationKind
from repro.schedule.validation import validate_schedule
from repro.simulation.executor import simulate
from repro.simulation.failures import FailureScenario

from tests.util import uniform_problem


class TestPreconditions:
    def test_requires_npf_one(self):
        problem = uniform_problem(diamond(), processors=3, npf=0)
        with pytest.raises(SchedulingError, match="npf=0"):
            HBPScheduler(problem)

    def test_rejects_memory_operations(self):
        graph = AlgorithmGraph("with-mem")
        graph.add_operation("M", OperationKind.MEMORY)
        graph.add_operation("A")
        graph.add_dependency("M", "A")
        problem = uniform_problem(graph, processors=3, npf=1)
        with pytest.raises(SchedulingError, match="memory"):
            HBPScheduler(problem)

    def test_infeasible_distribution_rejected(self):
        problem = uniform_problem(diamond(), processors=3, npf=1)
        problem.exec_times.forbid("A", "P1")
        problem.exec_times.forbid("A", "P2")
        with pytest.raises(InfeasibleReplicationError):
            schedule_hbp(problem)


class TestSchedules:
    def test_every_task_duplicated_exactly_twice(self):
        problem = uniform_problem(fork_join(3), processors=3, npf=1)
        result = schedule_hbp(problem)
        for operation in problem.algorithm.operation_names():
            replicas = result.schedule.replicas_of(operation)
            assert len(replicas) == 2
            assert len({r.processor for r in replicas}) == 2

    def test_schedule_validates(self):
        problem = uniform_problem(fork_join(3), processors=4, npf=1)
        result = schedule_hbp(problem)
        report = validate_schedule(
            result.schedule,
            problem.algorithm,
            problem.architecture,
            problem.exec_times,
            problem.comm_times,
        )
        assert report.ok, str(report)

    def test_single_crash_masked(self):
        problem = uniform_problem(diamond(), processors=3, npf=1)
        result = schedule_hbp(problem)
        for processor in problem.architecture.processor_names():
            trace = simulate(
                result.schedule, problem.algorithm, FailureScenario.crash(processor)
            )
            assert trace.outputs_completion(problem.algorithm) is not None

    def test_height_groups_processed_in_order(self):
        problem = uniform_problem(linear_chain(3), processors=3, npf=1)
        result = schedule_hbp(problem)
        # In a chain, every replica of T0 ends before any replica of T2
        # starts (precedence is at least respected timewise).
        t0_end = max(r.end for r in result.schedule.replicas_of("T0"))
        t2_start = min(r.start for r in result.schedule.replicas_of("T2"))
        assert t0_end <= t2_start + 1e-9

    def test_deterministic(self):
        problem = uniform_problem(fork_join(4), processors=4, npf=1)
        first = schedule_hbp(problem)
        second = schedule_hbp(problem)
        assert first.makespan == second.makespan

    def test_stats_populated(self):
        problem = uniform_problem(diamond(), processors=3, npf=1)
        stats = schedule_hbp(problem).stats
        assert stats.steps == 4
        # Every selection evaluates at least P*(P-1) ordered pairs.
        assert stats.pair_evaluations >= 4 * 6
        assert stats.wall_time_s >= 0.0

    def test_rtc_report_attached(self):
        from repro.timing.constraints import RealTimeConstraints

        problem = uniform_problem(
            diamond(), processors=3, npf=1,
            rtc=RealTimeConstraints(global_deadline=1000.0),
        )
        assert schedule_hbp(problem).rtc_report.satisfied

    def test_makespan_property(self):
        problem = uniform_problem(diamond(), processors=3, npf=1)
        result = schedule_hbp(problem)
        assert result.makespan == result.schedule.makespan()
