"""Unit tests for the operation vertices (repro.graphs.operations)."""

import pytest

from repro.graphs.operations import (
    Operation,
    OperationKind,
    is_memory_half,
    memory_base_name,
    memory_read_name,
    memory_write_name,
)


class TestOperationKind:
    def test_values_match_paper_vocabulary(self):
        assert OperationKind.COMPUTATION.value == "comp"
        assert OperationKind.MEMORY.value == "mem"
        assert OperationKind.EXTERNAL_IO.value == "extio"

    def test_constructible_from_string(self):
        assert OperationKind("comp") is OperationKind.COMPUTATION
        assert OperationKind("mem") is OperationKind.MEMORY
        assert OperationKind("extio") is OperationKind.EXTERNAL_IO

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            OperationKind("task")


class TestOperation:
    def test_default_kind_is_computation(self):
        assert Operation("A").kind is OperationKind.COMPUTATION

    def test_kind_coerced_from_string(self):
        assert Operation("M", "mem").kind is OperationKind.MEMORY

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Operation("")

    def test_predicates(self):
        assert Operation("A").is_computation()
        assert not Operation("A").is_memory()
        assert Operation("M", OperationKind.MEMORY).is_memory()
        assert Operation("I", OperationKind.EXTERNAL_IO).is_external_io()

    def test_equality_ignores_kind(self):
        # Identity is the name; two kinds for one name is a graph error,
        # checked at graph level.
        assert Operation("A") == Operation("A", OperationKind.MEMORY)

    def test_ordering_by_name(self):
        assert sorted([Operation("B"), Operation("A")]) == [
            Operation("A"),
            Operation("B"),
        ]

    def test_hashable(self):
        assert len({Operation("A"), Operation("A"), Operation("B")}) == 2

    def test_str_is_name(self):
        assert str(Operation("A")) == "A"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Operation("A").name = "B"


class TestMemoryNaming:
    def test_read_and_write_names(self):
        assert memory_read_name("M") == "M#read"
        assert memory_write_name("M") == "M#write"

    def test_is_memory_half(self):
        assert is_memory_half("M#read")
        assert is_memory_half("M#write")
        assert not is_memory_half("M")
        assert not is_memory_half("reader")

    def test_base_name_roundtrip(self):
        assert memory_base_name(memory_read_name("M")) == "M"
        assert memory_base_name(memory_write_name("M")) == "M"

    def test_base_name_passthrough(self):
        assert memory_base_name("A") == "A"
