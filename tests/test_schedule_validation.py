"""Unit tests for the independent schedule validator."""

import pytest

from repro.exceptions import ScheduleValidationError
from repro.graphs.algorithm import from_dependencies
from repro.hardware.topologies import fully_connected
from repro.schedule.schedule import Schedule
from repro.schedule.validation import assert_valid_schedule, validate_schedule
from repro.timing.comm_times import CommunicationTimes
from repro.timing.exec_times import ExecutionTimes


def tiny_setup():
    algorithm = from_dependencies([("A", "B")])
    architecture = fully_connected(3)
    exec_times = ExecutionTimes.uniform(["A", "B"], architecture.processor_names(), 1.0)
    comm_times = CommunicationTimes.uniform(
        [("A", "B")], architecture.link_names(), 0.5
    )
    return algorithm, architecture, exec_times, comm_times


def valid_npf1_schedule() -> Schedule:
    """A hand-built correct Npf=1 schedule of A -> B."""
    schedule = Schedule(
        processors=["P1", "P2", "P3"],
        links=["L1.2", "L1.3", "L2.3"],
        npf=1,
    )
    schedule.place_operation("A", "P1", 0.0, 1.0)
    schedule.place_operation("A", "P2", 0.0, 1.0)
    # B on P1 is fed by the local A replica; B on P3 receives from both.
    schedule.place_operation("B", "P1", 1.0, 1.0)
    schedule.place_comm("A", "B", 0, 1, "L1.3", 1.0, 0.5, "P1", "P3")
    schedule.place_comm("A", "B", 1, 1, "L2.3", 1.0, 0.5, "P2", "P3")
    schedule.place_operation("B", "P3", 1.5, 1.0)
    return schedule


class TestValidSchedule:
    def test_hand_built_schedule_passes(self):
        report = validate_schedule(valid_npf1_schedule(), *tiny_setup())
        assert report.ok, str(report)

    def test_assert_valid_does_not_raise(self):
        assert_valid_schedule(valid_npf1_schedule(), *tiny_setup())

    def test_report_str_when_ok(self):
        report = validate_schedule(valid_npf1_schedule(), *tiny_setup())
        assert str(report) == "schedule valid"


class TestCompleteness:
    def test_missing_operation_detected(self):
        schedule = valid_npf1_schedule()
        algorithm = from_dependencies([("A", "B"), ("A", "C")])
        _, architecture, exec_times, comm_times = tiny_setup()
        exec_times.set("C", "P1", 1.0)
        report = validate_schedule(
            schedule, algorithm, architecture, exec_times, comm_times
        )
        assert any("'C' is not scheduled" in issue for issue in report.issues)

    def test_under_replication_detected(self):
        schedule = Schedule(processors=["P1", "P2", "P3"], links=["L1.2"], npf=1)
        schedule.place_operation("A", "P1", 0.0, 1.0)
        schedule.place_operation("B", "P1", 1.0, 1.0)
        schedule.place_operation("B", "P2", 1.5, 1.0)
        report = validate_schedule(schedule, *tiny_setup())
        assert any("needs at least 2" in issue for issue in report.issues)

    def test_replication_not_required_mode(self):
        schedule = Schedule(processors=["P1", "P2", "P3"], links=[], npf=0)
        schedule.place_operation("A", "P1", 0.0, 1.0)
        schedule.place_operation("B", "P1", 1.0, 1.0)
        report = validate_schedule(schedule, *tiny_setup(), require_replication=False)
        assert report.ok, str(report)

    def test_alien_operation_detected(self):
        schedule = valid_npf1_schedule()
        schedule.place_operation("Z", "P2", 5.0, 1.0)
        algorithm, architecture, exec_times, comm_times = tiny_setup()
        exec_times.set("Z", "P2", 1.0)
        report = validate_schedule(
            schedule, algorithm, architecture, exec_times, comm_times
        )
        assert any("not in the algorithm" in issue for issue in report.issues)


class TestTimingFaithfulness:
    def test_wrong_duration_detected(self):
        schedule = valid_npf1_schedule()
        algorithm, architecture, exec_times, comm_times = tiny_setup()
        exec_times.set("A", "P1", 2.0)  # table now disagrees
        report = validate_schedule(
            schedule, algorithm, architecture, exec_times, comm_times
        )
        assert any("table says 2" in issue for issue in report.issues)

    def test_forbidden_placement_detected(self):
        schedule = valid_npf1_schedule()
        algorithm, architecture, exec_times, comm_times = tiny_setup()
        exec_times.forbid("A", "P1")
        report = validate_schedule(
            schedule, algorithm, architecture, exec_times, comm_times
        )
        assert any("distribution constraint" in issue for issue in report.issues)

    def test_wrong_comm_duration_detected(self):
        schedule = valid_npf1_schedule()
        algorithm, architecture, exec_times, comm_times = tiny_setup()
        comm_times.set(("A", "B"), "L1.3", 2.0)
        report = validate_schedule(
            schedule, algorithm, architecture, exec_times, comm_times
        )
        assert any("table says 2" in issue for issue in report.issues)


class TestDataCoverage:
    def test_comm_before_producer_detected(self):
        schedule = Schedule(
            processors=["P1", "P2", "P3"], links=["L1.2", "L1.3", "L2.3"], npf=1
        )
        schedule.place_operation("A", "P1", 0.0, 1.0)
        schedule.place_operation("A", "P2", 0.0, 1.0)
        schedule.place_operation("B", "P1", 1.0, 1.0)
        schedule.place_comm("A", "B", 0, 1, "L1.3", 0.5, 0.5, "P1", "P3")
        schedule.place_comm("A", "B", 1, 1, "L2.3", 1.0, 0.5, "P2", "P3")
        schedule.place_operation("B", "P3", 1.5, 1.0)
        report = validate_schedule(schedule, *tiny_setup())
        assert any("before its producer" in issue for issue in report.issues)

    def test_missing_input_detected(self):
        schedule = Schedule(
            processors=["P1", "P2", "P3"], links=["L1.2", "L1.3", "L2.3"], npf=1
        )
        schedule.place_operation("A", "P1", 0.0, 1.0)
        schedule.place_operation("A", "P2", 0.0, 1.0)
        schedule.place_operation("B", "P1", 1.0, 1.0)
        schedule.place_operation("B", "P3", 1.5, 1.0)  # no comms toward it
        report = validate_schedule(schedule, *tiny_setup())
        assert any("receives nothing" in issue for issue in report.issues)

    def test_single_source_insufficient_for_npf1(self):
        schedule = Schedule(
            processors=["P1", "P2", "P3"], links=["L1.2", "L1.3", "L2.3"], npf=1
        )
        schedule.place_operation("A", "P1", 0.0, 1.0)
        schedule.place_operation("A", "P2", 0.0, 1.0)
        schedule.place_operation("B", "P1", 1.0, 1.0)
        schedule.place_comm("A", "B", 0, 1, "L1.3", 1.0, 0.5, "P1", "P3")
        schedule.place_operation("B", "P3", 1.5, 1.0)
        report = validate_schedule(schedule, *tiny_setup())
        assert any("comes from only 1" in issue for issue in report.issues)

    def test_start_before_first_input_set_detected(self):
        schedule = Schedule(
            processors=["P1", "P2", "P3"], links=["L1.2", "L1.3", "L2.3"], npf=1
        )
        schedule.place_operation("A", "P1", 0.0, 1.0)
        schedule.place_operation("A", "P2", 0.0, 1.0)
        schedule.place_operation("B", "P1", 1.0, 1.0)
        schedule.place_comm("A", "B", 0, 1, "L1.3", 1.0, 0.5, "P1", "P3")
        schedule.place_comm("A", "B", 1, 1, "L2.3", 1.0, 0.5, "P2", "P3")
        schedule.place_operation("B", "P3", 1.2, 1.0)  # first arrival is 1.5
        report = validate_schedule(schedule, *tiny_setup())
        assert any("first complete input set" in issue for issue in report.issues)

    def test_local_predecessor_is_enough(self):
        # B on P1 has A locally: no comms needed, no issue reported.
        report = validate_schedule(valid_npf1_schedule(), *tiny_setup())
        assert report.ok


class TestCommChecks:
    def test_comm_without_dependency_detected(self):
        schedule = valid_npf1_schedule()
        schedule.place_comm("B", "A", 0, 0, "L1.2", 3.0, 0.5, "P1", "P2")
        report = validate_schedule(schedule, *tiny_setup())
        assert any("no matching data-dependency" in issue for issue in report.issues)

    def test_comm_on_detached_link_detected(self):
        schedule = Schedule(
            processors=["P1", "P2", "P3"], links=["L1.2", "L1.3", "L2.3"], npf=1
        )
        schedule.place_operation("A", "P1", 0.0, 1.0)
        schedule.place_operation("A", "P2", 0.0, 1.0)
        schedule.place_operation("B", "P1", 1.0, 1.0)
        # L2.3 does not attach P1: the comm below is physically impossible.
        schedule.place_comm("A", "B", 0, 1, "L2.3", 1.0, 0.5, "P1", "P3")
        schedule.place_comm("A", "B", 1, 1, "L1.3", 1.0, 0.5, "P2", "P3")
        schedule.place_operation("B", "P3", 1.5, 1.0)
        report = validate_schedule(schedule, *tiny_setup())
        assert any("is not on link" in issue for issue in report.issues)

    def test_phantom_sender_detected(self):
        schedule = valid_npf1_schedule()
        # A comm claiming to come from P3 where no replica of A lives.
        schedule.place_comm("A", "B", 0, 0, "L1.3", 5.0, 0.5, "P3", "P1")
        report = validate_schedule(schedule, *tiny_setup())
        assert any("no replica of" in issue for issue in report.issues)

    def test_multi_hop_rejected_when_direct_required(self):
        schedule = valid_npf1_schedule()
        algorithm, architecture, exec_times, comm_times = tiny_setup()
        report = validate_schedule(
            schedule,
            algorithm,
            architecture,
            exec_times,
            comm_times,
            require_direct_links=True,
        )
        assert report.ok  # all comms in the fixture are single-hop

    def test_assert_raises_with_issue_list(self):
        schedule = valid_npf1_schedule()
        algorithm = from_dependencies([("A", "B"), ("A", "C")])
        _, architecture, exec_times, comm_times = tiny_setup()
        exec_times.set("C", "P1", 1.0)
        with pytest.raises(ScheduleValidationError, match="not scheduled"):
            assert_valid_schedule(
                schedule, algorithm, architecture, exec_times, comm_times
            )
