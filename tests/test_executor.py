"""Tests for the discrete-event schedule replay (the runtime of §5)."""

import pytest

from repro.core.ftbar import schedule_ftbar
from repro.graphs.algorithm import from_dependencies
from repro.graphs.builder import diamond, linear_chain
from repro.simulation.executor import DetectionPolicy, ScheduleSimulator, simulate
from repro.simulation.failures import FailureScenario, ProcessorFailure
from repro.simulation.trace import EventStatus

from tests.util import uniform_problem


def scheduled(problem):
    result = schedule_ftbar(problem)
    return result.schedule, result.expanded_algorithm


class TestNominalExecution:
    def test_reproduces_static_times(self):
        problem = uniform_problem(diamond(), processors=3, npf=1, comm_time=2.0)
        schedule, algorithm = scheduled(problem)
        trace = simulate(schedule, algorithm)
        for event in schedule.all_operations():
            outcome = trace.operation_outcome(event.operation, event.replica)
            assert outcome.status is EventStatus.COMPLETED
            assert outcome.start == pytest.approx(event.start)
            assert outcome.end == pytest.approx(event.end)

    def test_nominal_comms_all_complete(self):
        problem = uniform_problem(diamond(), processors=3, npf=1, comm_time=2.0)
        schedule, algorithm = scheduled(problem)
        trace = simulate(schedule, algorithm)
        assert len(trace.completed_comms()) == schedule.comm_count()

    def test_makespan_matches_static(self):
        problem = uniform_problem(linear_chain(4), processors=3, npf=1)
        schedule, algorithm = scheduled(problem)
        assert simulate(schedule, algorithm).makespan() == pytest.approx(
            schedule.makespan()
        )

    def test_missing_operation_in_schedule_rejected(self):
        problem = uniform_problem(diamond(), processors=3, npf=1)
        schedule, _ = scheduled(problem)
        bigger = from_dependencies([("A", "B"), ("A", "Z")])
        with pytest.raises(Exception, match="not in the"):
            ScheduleSimulator(schedule, bigger)


class TestSingleCrash:
    def test_any_single_crash_is_masked(self):
        problem = uniform_problem(diamond(), processors=3, npf=1, comm_time=0.5)
        schedule, algorithm = scheduled(problem)
        for processor in ("P1", "P2", "P3"):
            trace = simulate(schedule, algorithm, FailureScenario.crash(processor))
            assert trace.outputs_completion(algorithm) is not None
            assert trace.all_operations_delivered(algorithm)

    def test_operations_on_dead_processor_are_lost(self):
        problem = uniform_problem(diamond(), processors=3, npf=1)
        schedule, algorithm = scheduled(problem)
        trace = simulate(schedule, algorithm, FailureScenario.crash("P1"))
        for event in schedule.operations_on("P1"):
            outcome = trace.operation_outcome(event.operation, event.replica)
            assert outcome.status is EventStatus.LOST

    def test_comms_from_dead_processor_skipped(self):
        problem = uniform_problem(diamond(), processors=3, npf=1, comm_time=2.0)
        schedule, algorithm = scheduled(problem)
        trace = simulate(schedule, algorithm, FailureScenario.crash("P1"))
        for comm in trace.comms:
            if comm.source_processor == "P1":
                assert comm.status in (EventStatus.SKIPPED, EventStatus.LOST)

    def test_degraded_run_can_be_longer(self):
        problem = uniform_problem(diamond(), processors=3, npf=1, comm_time=2.0)
        schedule, algorithm = scheduled(problem)
        nominal = simulate(schedule, algorithm).makespan()
        lengths = [
            simulate(schedule, algorithm, FailureScenario.crash(p)).makespan()
            for p in ("P1", "P2", "P3")
        ]
        assert all(length >= 0 for length in lengths)
        # At least the runs complete; they may be longer or shorter than
        # nominal depending on which processor died.
        assert max(lengths) >= 0.0
        assert nominal > 0.0

    def test_late_crash_after_completion_changes_nothing(self):
        problem = uniform_problem(diamond(), processors=3, npf=1)
        schedule, algorithm = scheduled(problem)
        nominal = simulate(schedule, algorithm).makespan()
        late = simulate(
            schedule, algorithm, FailureScenario.crash("P1", at=nominal + 1.0)
        )
        assert late.makespan() == pytest.approx(nominal)


class TestBeyondHypothesis:
    def test_npf_plus_one_crashes_can_starve(self):
        problem = uniform_problem(linear_chain(3), processors=3, npf=1)
        schedule, algorithm = scheduled(problem)
        trace = simulate(schedule, algorithm, FailureScenario.crashes(["P1", "P2", "P3"]))
        assert trace.outputs_completion(algorithm) is None
        assert trace.makespan() == 0.0

    def test_starved_operations_reported(self):
        # Kill the two processors hosting T0's replicas after T0 would
        # have started but before sending: downstream replicas starve.
        problem = uniform_problem(linear_chain(2), processors=3, npf=1)
        schedule, algorithm = scheduled(problem)
        hosts = {r.processor for r in schedule.replicas_of("T0")}
        trace = simulate(schedule, algorithm, FailureScenario.crashes(hosts))
        statuses = {o.status for o in trace.outcomes_of("T1")}
        assert EventStatus.STARVED in statuses or EventStatus.LOST in statuses
        assert trace.first_completion("T1") is None


class TestIntermittentFailures:
    def test_processor_resumes_after_recovery(self):
        problem = uniform_problem(linear_chain(3), processors=3, npf=1)
        schedule, algorithm = scheduled(problem)
        # Fail one host of T0 briefly; without detection the processor
        # resumes its static sequence and the run still completes.
        host = schedule.replicas_of("T0")[0].processor
        trace = simulate(
            schedule,
            algorithm,
            FailureScenario.intermittent(host, 0.0, 0.4),
        )
        assert trace.outputs_completion(algorithm) is not None

    def test_operation_delayed_by_down_window(self):
        problem = uniform_problem(linear_chain(2), processors=3, npf=1)
        schedule, algorithm = scheduled(problem)
        host = schedule.replicas_of("T0")[0].processor
        trace = simulate(
            schedule, algorithm, FailureScenario.intermittent(host, 0.0, 5.0)
        )
        outcome = next(
            o for o in trace.outcomes_of("T0")
            if o.processor == host
        )
        assert outcome.status is EventStatus.COMPLETED
        assert outcome.start >= 5.0

    def test_makespan_still_counts_delayed_events(self):
        problem = uniform_problem(linear_chain(2), processors=3, npf=1)
        schedule, algorithm = scheduled(problem)
        host = schedule.replicas_of("T0")[0].processor
        nominal = simulate(schedule, algorithm).makespan()
        delayed = simulate(
            schedule, algorithm, FailureScenario.intermittent(host, 0.0, 50.0)
        ).makespan()
        assert delayed >= nominal
