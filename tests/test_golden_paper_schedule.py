"""Golden regression test: the exact schedule of the worked example.

The paper-example schedule is *the* reproduction artefact of this
repository (its length 15.05 equals the paper's, and the degraded
lengths for P1/P2 crashes match Figure 8 exactly).  This test pins
every placement and comm so that any change to the heuristic's
tie-breaking, pressure algebra or comm planning is caught immediately.
If a deliberate algorithm change alters these values, re-derive the
table with the snippet in the module docstring of
``workloads/paper_example.py`` and re-check the E1 numbers before
updating it.
"""

import pytest

from repro.core.ftbar import schedule_ftbar
from repro.workloads.paper_example import build_problem

#: (operation, replica, processor, start, duplicated)
GOLDEN_OPERATIONS = [
    ("I", 0, "P1", 0.0, False),
    ("I", 1, "P2", 0.0, False),
    ("A", 0, "P1", 1.0, False),
    ("A", 1, "P2", 1.3, False),
    ("A", 2, "P3", 2.25, True),
    ("C", 0, "P2", 2.8, False),
    ("C", 1, "P1", 3.0, False),
    ("B", 0, "P3", 3.25, False),
    ("C", 2, "P3", 4.75, True),
    ("B", 1, "P1", 5.0, False),
    ("F", 0, "P3", 5.75, False),
    ("D", 0, "P2", 5.8, False),
    ("D", 1, "P3", 6.75, False),
    ("E", 0, "P2", 7.5, False),
    ("F", 1, "P1", 8.0, False),
    ("G", 0, "P2", 8.7, False),
    ("E", 1, "P3", 9.75, False),
    ("E", 2, "P1", 10.0, True),
    ("G", 2, "P1", 11.15, True),
    ("G", 1, "P3", 11.75, False),
    ("O", 1, "P1", 12.55, False),
    ("O", 0, "P3", 13.25, False),
]

#: (source, source_replica, target, target_replica, link, start)
GOLDEN_COMMS = [
    ("I", 0, "A", 2, "L1.3", 1.0),
    ("I", 1, "A", 2, "L2.3", 1.3),
    ("F", 0, "G", 0, "L2.3", 6.75),
    ("D", 1, "G", 2, "L1.3", 9.75),
    ("F", 1, "G", 0, "L1.2", 10.0),
    ("D", 0, "G", 2, "L1.2", 11.0),
]


class TestGoldenSchedule:
    def test_every_operation_placement(self, paper_result):
        measured = [
            (e.operation, e.replica, e.processor, e.start, e.duplicated)
            for e in paper_result.schedule.all_operations()
        ]
        assert len(measured) == len(GOLDEN_OPERATIONS)
        for got, expected in zip(measured, GOLDEN_OPERATIONS):
            assert got[:3] == expected[:3], (got, expected)
            assert got[3] == pytest.approx(expected[3]), (got, expected)
            assert got[4] == expected[4], (got, expected)

    def test_every_comm_placement(self, paper_result):
        measured = [
            (c.source, c.source_replica, c.target, c.target_replica,
             c.link, c.start)
            for c in paper_result.schedule.all_comms()
        ]
        assert len(measured) == len(GOLDEN_COMMS)
        for got, expected in zip(measured, GOLDEN_COMMS):
            assert got[:5] == expected[:5], (got, expected)
            assert got[5] == pytest.approx(expected[5]), (got, expected)

    def test_figure6_moment(self):
        # The paper's Figure 6: when C is scheduled (step 3), a third,
        # duplicated replica of A appears on P3, fed by both replicas of
        # I over the parallel links L1.3 and L2.3, and A/2 starts at the
        # end of the earliest of those comms.
        result = schedule_ftbar(build_problem())
        duplicate = result.schedule.replica_on("A", "P3")
        assert duplicate is not None and duplicate.duplicated
        feeds = result.schedule.comms_toward("A", duplicate.replica)
        assert {c.link for c in feeds} == {"L1.3", "L2.3"}
        assert duplicate.start == pytest.approx(min(c.end for c in feeds))
