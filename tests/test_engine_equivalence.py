"""Seed-equivalence corpus for the incremental scheduling engine.

The incremental engine (dirty-set pressure caching, O(1) ready-set
maintenance, indexed schedule state) must be a pure-performance change:
bit-identical replica placements, comm orders and observer
``StepRecord`` streams.  Two layers of protection:

* ``golden_engine_corpus.json`` stores SHA-256 fingerprints recorded
  with the *seed* (pre-refactor) engine over a corpus of random-DAG
  problems (seeds x npf in {0, 1, 2} x point-to-point/bus topologies);
  both the incremental and the legacy (``incremental=False``) paths
  must still land on them exactly;
* old-vs-new comparisons re-run both paths in-process over the corpus,
  the option variants and the paper example, comparing full event
  streams rather than hashes so a failure names the diverging step.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.analysis.experiments import _bus_variant
from repro.baselines.hbp import schedule_hbp
from repro.core.ftbar import schedule_ftbar
from repro.core.options import SchedulerOptions
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem

GOLDENS = json.loads(
    (Path(__file__).parent / "golden_engine_corpus.json").read_text()
)

LEGACY = SchedulerOptions(incremental=False)


def corpus_problem(seed: int, npf: int, topology: str):
    problem = generate_problem(
        RandomWorkloadConfig(
            operations=18, ccr=1.0, processors=4, npf=npf, seed=seed
        )
    )
    return problem if topology == "p2p" else _bus_variant(problem)


def ftbar_trace(problem, options=None):
    """Every engine decision: events, comms and the StepRecord stream."""
    records = []
    result = schedule_ftbar(problem, options, observer=records.append)
    events = [
        (e.operation, e.replica, e.processor, e.start, e.end, e.duplicated)
        for e in result.schedule.all_operations()
    ]
    comms = [
        (c.source, c.target, c.source_replica, c.target_replica, c.link,
         c.start, c.end, c.source_processor, c.target_processor, c.hop_index)
        for c in result.schedule.all_comms()
    ]
    steps = [
        (r.step, r.candidates, r.operation, r.processors, r.urgency,
         sorted(r.pressures.items()), r.makespan)
        for r in records
    ]
    return events, comms, steps


def ftbar_fingerprint(trace) -> str:
    events, comms, steps = trace
    digest = hashlib.sha256()
    for item in (*events, *comms, *steps):
        digest.update(repr(item).encode())
    return digest.hexdigest()


def hbp_fingerprint(problem) -> str:
    result = schedule_hbp(problem)
    digest = hashlib.sha256()
    for e in result.schedule.all_operations():
        digest.update(
            repr((e.operation, e.replica, e.processor, e.start, e.end)).encode()
        )
    for c in result.schedule.all_comms():
        digest.update(
            repr((c.source, c.target, c.source_replica, c.target_replica,
                  c.link, c.start, c.end, c.source_processor,
                  c.target_processor, c.hop_index)).encode()
        )
    return digest.hexdigest()


CORPUS = [
    (seed, npf, topology)
    for seed in (1, 2, 3)
    for npf in (0, 1, 2)
    for topology in ("p2p", "bus")
]


class TestSeedGoldens:
    """Both paths still land exactly on the recorded seed fingerprints."""

    @pytest.mark.parametrize("seed,npf,topology", CORPUS)
    def test_incremental_matches_seed_golden(self, seed, npf, topology):
        problem = corpus_problem(seed, npf, topology)
        golden = GOLDENS[f"N18-seed{seed}-npf{npf}-{topology}"]
        trace = ftbar_trace(problem)
        assert ftbar_fingerprint(trace) == golden["sha256"]

    @pytest.mark.parametrize("seed,npf,topology", CORPUS)
    def test_legacy_matches_seed_golden(self, seed, npf, topology):
        problem = corpus_problem(seed, npf, topology)
        golden = GOLDENS[f"N18-seed{seed}-npf{npf}-{topology}"]
        trace = ftbar_trace(problem, LEGACY)
        assert ftbar_fingerprint(trace) == golden["sha256"]

    @pytest.mark.parametrize("seed", (1, 2, 3))
    @pytest.mark.parametrize("topology", ("p2p", "bus"))
    def test_hbp_matches_seed_golden(self, seed, topology):
        problem = corpus_problem(seed, 1, topology)
        golden = GOLDENS[f"hbp-N18-seed{seed}-{topology}"]
        assert hbp_fingerprint(problem) == golden["sha256"]


class TestOldVsNew:
    """Incremental vs legacy compared step-by-step, not just by hash."""

    def assert_identical(self, problem, options_kwargs=None):
        kwargs = options_kwargs or {}
        new = ftbar_trace(problem, SchedulerOptions(**kwargs))
        old = ftbar_trace(
            problem, SchedulerOptions(**kwargs, incremental=False)
        )
        assert new[0] == old[0], "replica placements diverge"
        assert new[1] == old[1], "comm orders diverge"
        for new_step, old_step in zip(new[2], old[2]):
            assert new_step == old_step, f"StepRecord diverges: {new_step[0]}"
        assert len(new[2]) == len(old[2])

    @pytest.mark.parametrize("seed,npf,topology", CORPUS)
    def test_corpus(self, seed, npf, topology):
        self.assert_identical(corpus_problem(seed, npf, topology))

    @pytest.mark.parametrize(
        "variant",
        [
            {"link_insertion": True},
            {"processor_aware_pressure": True},
            {"duplication": False},
        ],
        ids=lambda v: next(iter(v)),
    )
    def test_option_variants(self, variant):
        self.assert_identical(corpus_problem(2, 1, "p2p"), variant)
        self.assert_identical(corpus_problem(2, 1, "bus"), variant)

    def test_paper_example(self, paper_problem):
        self.assert_identical(paper_problem)
        result = schedule_ftbar(paper_problem)
        assert result.makespan == pytest.approx(15.05)

    def test_heterogeneous_tables(self):
        problem = generate_problem(
            RandomWorkloadConfig(
                operations=14, ccr=1.0, processors=4, npf=1, seed=7,
                heterogeneous=True,
            )
        )
        self.assert_identical(problem)

    def test_multi_hop_ring(self):
        # A ring forces store-and-forward routes, exercising the
        # non-repairable plan path of the cache.
        from repro.hardware.topologies import ring
        from repro.problem import ProblemSpec
        from repro.timing.comm_times import CommunicationTimes
        from repro.timing.exec_times import ExecutionTimes

        base = generate_problem(
            RandomWorkloadConfig(operations=12, ccr=1.0, processors=4,
                                 npf=1, seed=9)
        )
        architecture = ring(4)
        comm_times = CommunicationTimes()
        for edge in base.algorithm.dependencies():
            for link in architecture.link_names():
                comm_times.set(edge, link, 3.0)
        exec_times = ExecutionTimes()
        for operation in base.algorithm.operation_names():
            for processor in architecture.processor_names():
                exec_times.set(operation, processor, 10.0)
        problem = ProblemSpec(
            algorithm=base.algorithm,
            architecture=architecture,
            exec_times=exec_times,
            comm_times=comm_times,
            npf=1,
            name="ring-equivalence",
        )
        self.assert_identical(problem)

    def test_cache_actually_serves_hits(self):
        result = schedule_ftbar(corpus_problem(1, 1, "p2p"))
        assert result.stats.cache_hits > 0
        legacy = schedule_ftbar(corpus_problem(1, 1, "p2p"), LEGACY)
        assert legacy.stats.cache_hits == 0
        assert (
            result.stats.pressure_evaluations
            < legacy.stats.pressure_evaluations
        )
