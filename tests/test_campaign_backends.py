"""Execution backends, work-stealing dispatch, and bit-identical merge.

The properties this PR pins:

* every backend (serial, local pool, work-stealing directory) computes
  the same deterministic records for the same spec;
* directory workers coordinate through the filesystem alone — claims
  are exclusive, expired leases are stolen with a structured
  ``lease_reclaimed`` event, poisonous jobs stop after bounded retries;
* a worker killed mid-lease costs time, never results: the canonically
  merged shards are byte-identical to an uninterrupted serial run;
* ``merge_stores`` is order-canonical, idempotent, torn-tail tolerant,
  and refuses (hard error) to launder conflicting records.
"""

import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignSpec,
    DirectoryCampaign,
    MergeConflictError,
    ResultStore,
    WorkloadSpec,
    cpu_affinity_count,
    default_worker_count,
    expand_jobs,
    make_backend,
    merge_stores,
    run_campaign,
    save_campaign,
    worker_loop,
)
from repro.cli import main
from repro.exceptions import ReproError, SerializationError


def small_spec(**overrides) -> CampaignSpec:
    """Four fast jobs: two tree families x two processor counts."""
    values = dict(
        name="backends",
        workloads=(
            WorkloadSpec(family="in_tree", size=3),
            WorkloadSpec(family="out_tree", size=3),
        ),
        processors=(2, 3),
        seeds=(0,),
        measures=("ftbar", "non_ft"),
    )
    values.update(overrides)
    return CampaignSpec(**values)


def canonical_bytes(tmp_path: Path, *inputs) -> bytes:
    """The canonical merged-store bytes of any mix of stores/directories."""
    output = tmp_path / f"canonical-{len(list(tmp_path.iterdir()))}.jsonl"
    merge_stores(list(inputs), output)
    return output.read_bytes()


class TestWorkerCount:
    def test_affinity_count_is_positive_or_none(self):
        count = cpu_affinity_count()
        assert count is None or count >= 1

    def test_default_worker_count_respects_affinity(self):
        count = default_worker_count()
        assert count >= 1
        affinity = cpu_affinity_count()
        if affinity is not None:
            # The pool must never oversubscribe the scheduling mask the
            # host actually grants (cgroup/taskset confinement).
            assert count == affinity

    def test_affinity_never_exceeds_cpu_count(self):
        affinity = cpu_affinity_count()
        if affinity is not None:
            assert affinity <= (os.cpu_count() or 1)


class TestStoreEvents:
    def test_events_excluded_from_record_accessors(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append("d1", {"x": 1})
        store.append_event("lease_reclaimed", job="d2", worker="w")
        assert store.load() == {"d1": {"x": 1}}
        assert store.digests() == {"d1"}
        assert all("event" not in line for line in store.diffable_lines())

    def test_events_accessor_returns_only_events(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append("d1", {"x": 1})
        store.append_event("retries_exhausted", job="d9", attempts=5)
        events = list(store.events())
        assert len(events) == 1
        assert events[0]["event"] == "retries_exhausted"
        assert events[0]["attempts"] == 5
        assert "recorded_at" in events[0]

    def test_event_after_torn_tail_repairs_store(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append("d1", {"x": 1})
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write('{"digest": "d2", "record":')  # torn write
        store.append_event("lease_reclaimed", job="d2")
        assert store.digests() == {"d1"}
        assert len(list(store.events())) == 1


class TestMerge:
    def two_shards(self, tmp_path) -> tuple[Path, Path]:
        a = ResultStore(tmp_path / "a.jsonl")
        b = ResultStore(tmp_path / "b.jsonl")
        a.append("d2", {"v": 2})
        a.append("d1", {"v": 1})
        b.append("d3", {"v": 3})
        return a.path, b.path

    def test_union_is_digest_sorted_and_envelope_free(self, tmp_path):
        a, b = self.two_shards(tmp_path)
        out = tmp_path / "m.jsonl"
        report = merge_stores([a, b], out)
        assert report.jobs == 3 and report.shards == 2
        lines = [json.loads(t) for t in out.read_text().splitlines()]
        assert [line["digest"] for line in lines] == ["d1", "d2", "d3"]
        assert all(set(line) == {"digest", "record"} for line in lines)

    def test_merge_is_order_canonical(self, tmp_path):
        a, b = self.two_shards(tmp_path)
        assert canonical_bytes(tmp_path, a, b) == canonical_bytes(
            tmp_path, b, a
        )

    def test_merge_is_idempotent(self, tmp_path):
        a, b = self.two_shards(tmp_path)
        first = tmp_path / "m1.jsonl"
        merge_stores([a, b], first)
        again = tmp_path / "m2.jsonl"
        merge_stores([first, a, b], again)
        assert first.read_bytes() == again.read_bytes()
        # And a self-merge of the canonical output reproduces itself.
        self_merge = tmp_path / "m3.jsonl"
        merge_stores([first], self_merge)
        assert first.read_bytes() == self_merge.read_bytes()

    def test_identical_duplicates_counted_not_conflicting(self, tmp_path):
        a = ResultStore(tmp_path / "a.jsonl")
        b = ResultStore(tmp_path / "b.jsonl")
        a.append("d1", {"v": 1}, elapsed_s=0.5)
        b.append("d1", {"v": 1}, elapsed_s=9.9, source="cache")
        report = merge_stores([a.path, b.path], tmp_path / "m.jsonl")
        assert report.jobs == 1 and report.duplicates == 1

    def test_conflicting_records_hard_error(self, tmp_path):
        a = ResultStore(tmp_path / "a.jsonl")
        b = ResultStore(tmp_path / "b.jsonl")
        a.append("d1", {"v": 1})
        b.append("d1", {"v": 2})
        with pytest.raises(MergeConflictError, match="conflicting"):
            merge_stores([a.path, b.path], tmp_path / "m.jsonl")
        assert not (tmp_path / "m.jsonl").exists()

    def test_dry_run_checks_conflicts_without_writing(self, tmp_path):
        a, b = self.two_shards(tmp_path)
        report = merge_stores([a, b])
        assert report.jobs == 3 and report.output is None
        assert list(tmp_path.glob("m*.jsonl")) == []

    def test_torn_tail_tolerated_across_shards(self, tmp_path):
        a, b = self.two_shards(tmp_path)
        with open(a, "a", encoding="utf-8") as handle:
            handle.write('{"digest": "d9", "rec')  # killed mid-write
        report = merge_stores([a, b], tmp_path / "m.jsonl")
        assert report.jobs == 3  # the fragment is dropped, not merged

    def test_events_routed_to_sidecar(self, tmp_path):
        a, b = self.two_shards(tmp_path)
        ResultStore(a).append_event("lease_reclaimed", job="d2", worker="w")
        out = tmp_path / "m.jsonl"
        report = merge_stores([a, b], out)
        assert report.events == 1
        assert report.event_kinds == {"lease_reclaimed": 1}
        sidecar = out.with_name("m.events.jsonl")
        assert report.events_output == sidecar
        assert "lease_reclaimed" in sidecar.read_text()
        # The canonical store itself carries no event lines.
        assert "lease_reclaimed" not in out.read_text()

    def test_directory_input_expands_to_shards(self, tmp_path):
        shards = tmp_path / "camp" / "shards"
        shards.mkdir(parents=True)
        ResultStore(shards / "w1.jsonl").append("d1", {"v": 1})
        report = merge_stores([tmp_path / "camp"], tmp_path / "m.jsonl")
        assert report.jobs == 1

    def test_missing_input_is_an_error(self, tmp_path):
        with pytest.raises(ReproError, match="does not exist"):
            merge_stores([tmp_path / "nope.jsonl"])

    def test_empty_directory_is_an_error(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ReproError, match="no result shards"):
            merge_stores([tmp_path / "empty"])


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError, match="unknown execution backend"):
            make_backend("ssh")

    def test_directory_backend_requires_directory(self):
        with pytest.raises(ReproError, match="campaign directory"):
            make_backend("directory")

    def test_spec_backend_field_validated(self):
        with pytest.raises(SerializationError, match="unknown execution"):
            small_spec(backend="carrier-pigeon")

    def test_spec_backend_roundtrips_and_defaults(self):
        from repro.campaign import campaign_from_dict, campaign_to_dict

        spec = small_spec(backend="directory")
        assert campaign_from_dict(campaign_to_dict(spec)) == spec
        # Pre-backend documents load with the historical default.
        document = campaign_to_dict(small_spec())
        del document["backend"]
        assert campaign_from_dict(document).backend == "local"


class TestBackendEquivalence:
    def test_serial_backend_matches_legacy_path(self, tmp_path):
        spec = small_spec()
        legacy = run_campaign(spec, jobs=1)
        serial = run_campaign(spec, backend="serial")
        assert serial.records == legacy.records
        assert serial.backend == "serial"

    def test_all_backends_bit_identical_stores(self, tmp_path):
        spec = small_spec()
        stores = {
            "serial": tmp_path / "serial.jsonl",
            "local": tmp_path / "local.jsonl",
        }
        run_campaign(spec, backend="serial", store=stores["serial"])
        run_campaign(spec, backend="local", jobs=2, store=stores["local"])
        run_campaign(
            spec,
            backend="directory",
            jobs=2,
            directory=tmp_path / "camp",
            lease_ttl_s=10.0,
        )
        reference = canonical_bytes(tmp_path, stores["serial"])
        assert canonical_bytes(tmp_path, stores["local"]) == reference
        assert canonical_bytes(tmp_path, tmp_path / "camp") == reference

    def test_directory_backend_report_accounting(self, tmp_path):
        spec = small_spec()
        report = run_campaign(
            spec, backend="directory", jobs=1, directory=tmp_path / "camp"
        )
        assert report.backend == "directory"
        assert report.completed == report.total_jobs
        assert report.records_in_order()


class TestDirectoryProtocol:
    def test_claims_are_exclusive(self, tmp_path):
        campaign = DirectoryCampaign.initialize(small_spec(), tmp_path / "c")
        assert campaign.try_claim("d1", "worker-a")
        assert not campaign.try_claim("d1", "worker-b")
        claim = campaign.read_claim("d1")
        assert claim["worker"] == "worker-a" and claim["attempt"] == 1
        campaign.release("d1")
        assert campaign.try_claim("d1", "worker-b")

    def test_initialize_is_idempotent_but_spec_pinned(self, tmp_path):
        spec = small_spec()
        DirectoryCampaign.initialize(spec, tmp_path / "c")
        DirectoryCampaign.initialize(spec, tmp_path / "c")  # same spec: fine
        with pytest.raises(ReproError, match="different campaign"):
            DirectoryCampaign.initialize(
                small_spec(name="other"), tmp_path / "c"
            )

    def test_worker_requires_initialized_directory(self, tmp_path):
        with pytest.raises(ReproError, match="not a campaign directory"):
            worker_loop(tmp_path / "void")

    def test_single_worker_drains_the_queue(self, tmp_path):
        spec = small_spec()
        campaign = DirectoryCampaign.initialize(spec, tmp_path / "c")
        report = worker_loop(tmp_path / "c", worker="solo", poll_s=0.05)
        assert report.completed == len(expand_jobs(spec))
        assert report.reclaims == 0 and report.exhausted == 0
        assert campaign.recorded_digests() == {
            job.digest for job in expand_jobs(spec)
        }
        assert not campaign.active_claims()

    def test_second_worker_serves_recorded_jobs_from_cache_or_skips(
        self, tmp_path
    ):
        DirectoryCampaign.initialize(small_spec(), tmp_path / "c")
        worker_loop(tmp_path / "c", worker="first", poll_s=0.05)
        report = worker_loop(tmp_path / "c", worker="late", poll_s=0.05)
        assert report.completed == 0  # nothing left to do

    def test_expired_lease_is_stolen_with_event(self, tmp_path):
        spec = small_spec()
        campaign = DirectoryCampaign.initialize(spec, tmp_path / "c")
        victim_job = expand_jobs(spec)[0]
        assert campaign.try_claim(victim_job.digest, "deadhost-1")
        past = time.time() - 60.0
        os.utime(campaign.claim_path(victim_job.digest), (past, past))

        report = worker_loop(
            tmp_path / "c", worker="survivor", lease_ttl_s=5.0, poll_s=0.05
        )
        assert report.reclaims == 1
        assert report.completed == len(expand_jobs(spec))
        events = list(campaign.shard_for("survivor").events())
        assert [event["event"] for event in events] == ["lease_reclaimed"]
        assert events[0]["previous_worker"] == "deadhost-1"
        assert events[0]["attempt"] == 2

    def test_live_lease_is_not_stolen(self, tmp_path):
        spec = small_spec()
        campaign = DirectoryCampaign.initialize(spec, tmp_path / "c")
        held = expand_jobs(spec)[0]
        assert campaign.try_claim(held.digest, "alive-1")  # fresh mtime

        done = threading.Event()

        def run():
            worker_loop(
                tmp_path / "c", worker="w", lease_ttl_s=30.0, poll_s=0.05
            )
            done.set()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        time.sleep(0.6)
        # The worker must be parked waiting on the live lease, with
        # every other job recorded and the held one untouched.
        assert not done.is_set()
        assert held.digest not in campaign.recorded_digests()
        assert campaign.read_claim(held.digest)["worker"] == "alive-1"
        campaign.release(held.digest)
        thread.join(timeout=30.0)
        assert done.is_set()

    def test_bounded_retries_abandon_poisonous_job(self, tmp_path):
        spec = small_spec()
        campaign = DirectoryCampaign.initialize(spec, tmp_path / "c")
        poison = expand_jobs(spec)[0]
        # A claim that has already died max_attempts times.
        assert campaign.try_claim(poison.digest, "deadhost-1", attempt=3)
        past = time.time() - 60.0
        os.utime(campaign.claim_path(poison.digest), (past, past))

        report = worker_loop(
            tmp_path / "c",
            worker="survivor",
            lease_ttl_s=5.0,
            poll_s=0.05,
            max_attempts=3,
        )
        assert report.exhausted == 1
        assert report.completed == len(expand_jobs(spec)) - 1
        assert poison.digest not in campaign.recorded_digests()
        # The tombstone claim is left in place so every later worker
        # sees the exhausted attempt count instead of retrying.
        assert campaign.read_claim(poison.digest)["attempt"] == 3
        events = list(campaign.shard_for("survivor").events())
        assert [event["event"] for event in events] == ["retries_exhausted"]

    def test_victim_that_recorded_before_dying_is_not_recomputed(
        self, tmp_path
    ):
        spec = small_spec()
        campaign = DirectoryCampaign.initialize(spec, tmp_path / "c")
        job = expand_jobs(spec)[0]
        # The victim recorded the result but died before releasing.
        worker_loop(tmp_path / "c", worker="victim", poll_s=0.05)
        assert campaign.try_claim(job.digest, "victim")
        past = time.time() - 60.0
        os.utime(campaign.claim_path(job.digest), (past, past))
        report = worker_loop(
            tmp_path / "c", worker="survivor", lease_ttl_s=5.0, poll_s=0.05
        )
        assert report.completed == 0 and report.reclaims == 0
        assert campaign.read_claim(job.digest) is None  # stale claim swept


class TestKilledWorkerMerge:
    def test_concurrent_workers_with_dead_lease_merge_bit_identical(
        self, tmp_path
    ):
        """The ISSUE's pin: kill-mid-lease costs time, never results.

        A dead worker holds one lease (simulated: claim file with an
        expired heartbeat and a torn half-record in its shard); two
        concurrent survivors drain the queue.  The canonical merge of
        all shards — the dead worker's torn one included — must be
        byte-identical to an uninterrupted serial run's store.
        """
        spec = small_spec(seeds=(0, 1))  # 8 jobs
        campaign = DirectoryCampaign.initialize(spec, tmp_path / "camp")
        jobs = expand_jobs(spec)
        victim_job = jobs[0]
        assert campaign.try_claim(victim_job.digest, "victim-1")
        past = time.time() - 60.0
        os.utime(campaign.claim_path(victim_job.digest), (past, past))
        with open(
            campaign.shard_for("victim-1").path, "a", encoding="utf-8"
        ) as handle:
            handle.write('{"digest": "' + victim_job.digest + '", "rec')

        reports = {}

        def run(name):
            reports[name] = worker_loop(
                tmp_path / "camp",
                worker=name,
                lease_ttl_s=2.0,
                poll_s=0.05,
            )

        threads = [
            threading.Thread(target=run, args=(name,), daemon=True)
            for name in ("survivor-a", "survivor-b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert set(reports) == {"survivor-a", "survivor-b"}
        assert sum(r.reclaims for r in reports.values()) >= 1
        assert campaign.recorded_digests() == {job.digest for job in jobs}

        serial_store = tmp_path / "serial.jsonl"
        run_campaign(spec, backend="serial", store=serial_store)
        assert canonical_bytes(
            tmp_path, tmp_path / "camp"
        ) == canonical_bytes(tmp_path, serial_store)


class TestBackendCli:
    def write_spec(self, tmp_path) -> Path:
        path = tmp_path / "spec.json"
        save_campaign(small_spec(), path)
        return path

    def test_init_worker_merge_status_flow(self, tmp_path, capsys):
        spec_path = self.write_spec(tmp_path)
        root = tmp_path / "camp"
        assert main(
            ["campaign", "init", str(spec_path), "--dir", str(root)]
        ) == 0
        assert "4 jobs" in capsys.readouterr().out
        assert main(
            ["campaign", "worker", str(root), "--worker-id", "w1", "--quiet"]
        ) == 0
        assert "4 jobs recorded" in capsys.readouterr().out
        merged = tmp_path / "merged.jsonl"
        assert main(
            ["campaign", "merge", str(root), "-o", str(merged)]
        ) == 0
        assert "merged 4 jobs" in capsys.readouterr().out

        serial = tmp_path / "serial.jsonl"
        assert main(
            [
                "campaign", "run", str(spec_path), "--backend", "serial",
                "--store", str(serial), "--no-cache", "--quiet",
            ]
        ) == 0
        capsys.readouterr()
        canonical = tmp_path / "serial-canonical.jsonl"
        assert main(
            ["campaign", "merge", str(serial), "-o", str(canonical)]
        ) == 0
        capsys.readouterr()
        assert merged.read_bytes() == canonical.read_bytes()

        assert main(
            [
                "campaign", "status", str(spec_path),
                "--store", str(serial), "--dir", str(root),
            ]
        ) == 0
        status = capsys.readouterr().out
        assert "100%" in status and "w1: 4" in status

    def test_run_directory_backend_cli(self, tmp_path, capsys):
        spec_path = self.write_spec(tmp_path)
        store = tmp_path / "results.jsonl"
        assert main(
            [
                "campaign", "run", str(spec_path),
                "--backend", "directory", "--dir", str(tmp_path / "camp"),
                "--workers", "2", "--store", str(store),
                "--no-cache", "--quiet",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "completed: 4/4" in out and "campaign dir:" in out
        assert ResultStore(store).digests() == {
            job.digest for job in expand_jobs(small_spec())
        }

    def test_merge_conflict_exits_nonzero(self, tmp_path, capsys):
        a = ResultStore(tmp_path / "a.jsonl")
        b = ResultStore(tmp_path / "b.jsonl")
        a.append("d1", {"v": 1})
        b.append("d1", {"v": 2})
        code = main(
            [
                "campaign", "merge", str(a.path), str(b.path),
                "-o", str(tmp_path / "m.jsonl"),
            ]
        )
        assert code == 1
        assert "conflicting" in capsys.readouterr().err

    def test_merge_dry_run_cli(self, tmp_path, capsys):
        a = ResultStore(tmp_path / "a.jsonl")
        a.append("d1", {"v": 1})
        assert main(["campaign", "merge", str(a.path)]) == 0
        assert "dry run" in capsys.readouterr().out

    def test_status_watch_exits_when_complete(self, tmp_path, capsys):
        spec_path = self.write_spec(tmp_path)
        root = tmp_path / "camp"
        main(["campaign", "init", str(spec_path), "--dir", str(root)])
        main(["campaign", "worker", str(root), "--worker-id", "w", "--quiet"])
        capsys.readouterr()
        assert main(
            [
                "campaign", "status", str(spec_path),
                "--store", str(tmp_path / "none.jsonl"),
                "--dir", str(root), "--watch", "--interval", "0.05",
            ]
        ) == 0
        assert "100%" in capsys.readouterr().out

    def test_example_dispatch_spec_loads(self):
        from repro.campaign import load_campaign

        spec = load_campaign(
            Path(__file__).resolve().parent.parent
            / "examples"
            / "campaign_dispatch.json"
        )
        assert spec.backend == "directory"
        assert len(expand_jobs(spec)) == 12
