"""Tests for the experiment harness (reduced parameters)."""

import pytest

from repro.analysis.experiments import (
    run_ablation,
    run_npf_sweep,
    run_overhead_vs_ccr,
    run_overhead_vs_operations,
    run_paper_example,
    run_runtime_comparison,
)


class TestPaperExampleExperiment:
    def test_all_reference_quantities_present(self):
        results = run_paper_example()
        assert results.ft_length == pytest.approx(15.05)
        assert results.rtc_satisfied
        assert set(results.degraded) == {"P1", "P2", "P3"}
        assert results.overhead == pytest.approx(
            results.ft_length - results.basic_length
        )
        assert results.replicas >= 18


class TestOverheadSweeps:
    def test_overhead_vs_operations_structure(self):
        sweep = run_overhead_vs_operations(
            operation_counts=(8, 16), ccr=5.0, graphs_per_point=2, seed=11
        )
        assert sweep.parameter == "N"
        assert [p.x for p in sweep.points] == [8.0, 16.0]
        for point in sweep.points:
            assert point.graphs == 2
            assert 0.0 <= point.ftbar_absence <= 100.0
            assert 0.0 <= point.hbp_absence <= 100.0

    def test_overhead_vs_ccr_structure(self):
        sweep = run_overhead_vs_ccr(
            ccrs=(0.5, 5.0), operations=10, graphs_per_point=2, seed=13
        )
        assert sweep.parameter == "CCR"
        assert [p.x for p in sweep.points] == [0.5, 5.0]

    def test_ftbar_beats_hbp_at_high_ccr(self):
        sweep = run_overhead_vs_ccr(
            ccrs=(5.0,), operations=20, graphs_per_point=3, seed=17
        )
        point = sweep.points[0]
        assert point.ftbar_absence < point.hbp_absence


class TestNpfSweep:
    def test_overhead_grows_with_npf(self):
        points = run_npf_sweep(
            npfs=(0, 1, 2), operations=12, processors=4,
            graphs_per_point=3, seed=19,
        )
        overheads = [p.overhead for p in points]
        assert overheads[0] == pytest.approx(0.0, abs=1e-9)
        assert overheads[1] > overheads[0]
        assert overheads[2] > overheads[1]

    def test_makespan_grows_with_npf(self):
        points = run_npf_sweep(
            npfs=(0, 2), operations=12, processors=4, graphs_per_point=3, seed=23
        )
        assert points[1].makespan > points[0].makespan


class TestRuntimeComparison:
    def test_structure(self):
        points = run_runtime_comparison(
            operation_counts=(10,), graphs_per_point=2, seed=29
        )
        assert points[0].operations == 10
        assert points[0].ftbar_seconds > 0
        assert points[0].hbp_seconds > 0


class TestAblation:
    def test_five_variants(self):
        points = run_ablation(operations=10, graphs_per_point=2, seed=31)
        assert len(points) == 5
        labels = {p.label for p in points}
        assert any("no duplication" in label for label in labels)
        assert any("processor-aware" in label for label in labels)

    def test_duplication_helps_at_high_ccr(self):
        points = run_ablation(operations=15, ccr=5.0, graphs_per_point=3, seed=37)
        by_label = {p.label: p for p in points}
        paper = by_label["ftbar (paper: duplication, append-only links)"]
        no_dup = by_label["no duplication"]
        assert paper.makespan <= no_dup.makespan
