"""Edge-case tests for the runtime simulator.

Covers the corners the main executor tests do not reach: multi-hop
relays through failing processors, head-of-line blocking on links,
failure-detection mistakes (section 5's last paragraph), and staggered
multi-failure arrivals (section 4.4: "several failures in a row can be
tolerated").
"""

import pytest

from repro.core.ftbar import schedule_ftbar
from repro.core.options import SchedulerOptions
from repro.graphs.algorithm import from_dependencies
from repro.graphs.builder import linear_chain
from repro.hardware.architecture import Architecture
from repro.hardware.link import Link
from repro.problem import ProblemSpec
from repro.simulation.executor import DetectionPolicy, simulate
from repro.simulation.failures import FailureScenario, ProcessorFailure
from repro.simulation.trace import EventStatus
from repro.schedule.schedule import Schedule
from repro.timing.comm_times import CommunicationTimes
from repro.timing.exec_times import ExecutionTimes

from tests.util import uniform_problem


# The relay placement needs the processor-aware pressure: the paper's
# start-time-only formula would keep B on the slow local processor.
_AWARE = SchedulerOptions(processor_aware_pressure=True)


def line_architecture() -> Architecture:
    arc = Architecture("line")
    for name in ("P1", "P2", "P3"):
        arc.add_processor(name)
    arc.add_link(Link.between("L1.2", "P1", "P2"))
    arc.add_link(Link.between("L2.3", "P2", "P3"))
    return arc


class TestMultiHopRelays:
    def relay_problem(self) -> ProblemSpec:
        algorithm = from_dependencies([("A", "B")])
        architecture = line_architecture()
        exec_times = ExecutionTimes.from_rows(
            ("P1", "P2", "P3"),
            {"A": (1.0, 5.0, 5.0), "B": (5.0, 5.0, 1.0)},
        )
        comm_times = CommunicationTimes.uniform(
            [("A", "B")], ("L1.2", "L2.3"), 0.5
        )
        return ProblemSpec(
            algorithm=algorithm,
            architecture=architecture,
            exec_times=exec_times,
            comm_times=comm_times,
            npf=0,
            name="relay",
        )

    def test_relay_delivery_in_nominal_run(self):
        result = schedule_ftbar(self.relay_problem(), _AWARE)
        # A lands on P1 and B on P3 (the fast processors), so the data
        # relays through P2.
        assert result.schedule.replica_on("A", "P1") is not None
        assert result.schedule.replica_on("B", "P3") is not None
        hops = result.schedule.comms_for_edge("A", "B")
        assert [h.hop_index for h in hops] == [0, 1]
        trace = simulate(result.schedule, result.expanded_algorithm)
        assert trace.first_completion("B") is not None

    def test_dead_relay_loses_the_data(self):
        result = schedule_ftbar(self.relay_problem(), _AWARE)
        trace = simulate(
            result.schedule,
            result.expanded_algorithm,
            FailureScenario.crash("P2"),
        )
        # P2 only relays, but fail-silence kills the second hop.
        statuses = {c.hop_index: c.status for c in trace.comms}
        assert statuses[1] in (EventStatus.SKIPPED, EventStatus.LOST)
        assert trace.first_completion("B") is None

    def test_relay_down_at_delivery_loses_the_iteration(self):
        # A static executive never retries: if the relay is down when
        # the first hop delivers, the data is gone for this iteration
        # even though the relay later recovers.
        result = schedule_ftbar(self.relay_problem(), _AWARE)
        trace = simulate(
            result.schedule,
            result.expanded_algorithm,
            FailureScenario.intermittent("P2", 0.0, 10.0),
        )
        assert trace.first_completion("B") is None

    def test_relay_recovered_before_delivery_is_transparent(self):
        result = schedule_ftbar(self.relay_problem(), _AWARE)
        nominal = simulate(result.schedule, result.expanded_algorithm)
        # P2 is down only before the first hop delivers (A ends at 1.0,
        # the hop delivers at 1.5): the relay never misses anything.
        recovered = simulate(
            result.schedule,
            result.expanded_algorithm,
            FailureScenario.intermittent("P2", 0.0, 1.2),
        )
        assert recovered.first_completion("B") == pytest.approx(
            nominal.first_completion("B")
        )


class TestHeadOfLineBlocking:
    def test_delayed_comm_blocks_later_comms_on_same_link(self):
        # Hand-built schedule: two comms on one link; the first one's
        # producer is delayed by an intermittent failure, so the second
        # comm (whose data is ready early) must still wait (the static
        # total order on the link is preserved).
        schedule = Schedule(processors=["P1", "P2"], links=["L"], npf=0)
        schedule.place_operation("A", "P1", 0.0, 1.0)
        schedule.place_operation("B", "P1", 1.0, 1.0)
        schedule.place_comm("A", "X", 0, 0, "L", 2.0, 1.0, "P1", "P2")
        schedule.place_comm("B", "Y", 0, 0, "L", 3.0, 1.0, "P1", "P2")
        schedule.place_operation("X", "P2", 3.0, 1.0)
        schedule.place_operation("Y", "P2", 4.0, 1.0)
        algorithm = from_dependencies([("A", "X"), ("B", "Y")])
        # Delay A (and thus the first comm) by failing P1 early on; B
        # runs after recovery, then both comms go out in order.
        trace = simulate(
            schedule, algorithm, FailureScenario.intermittent("P1", 0.0, 5.0)
        )
        first = next(c for c in trace.comms if c.source == "A")
        second = next(c for c in trace.comms if c.source == "B")
        assert first.status is EventStatus.COMPLETED
        assert second.status is EventStatus.COMPLETED
        assert second.start >= first.end - 1e-9


class TestDetectionMistakes:
    def test_starving_sender_is_wrongly_detected_as_faulty(self):
        # T0 replicas live on two processors; kill both so T1 starves.
        # T1's processor then never sends T1's data, and downstream
        # processors "detect" T1's host as faulty even though it is
        # healthy — the paper's "failure detection mistakes".
        problem = uniform_problem(linear_chain(3), processors=4, npf=1)
        result = schedule_ftbar(problem)
        schedule = result.schedule
        hosts = {r.processor for r in schedule.replicas_of("T0")}
        trace = simulate(
            schedule,
            result.expanded_algorithm,
            FailureScenario.crashes(hosts),
            DetectionPolicy.TIMEOUT_ARRAY,
        )
        healthy_t1_hosts = {
            r.processor
            for r in schedule.replicas_of("T1")
            if r.processor not in hosts
        }
        wrongly_accused = {
            faulty
            for known in trace.detections.values()
            for faulty in known
            if faulty in healthy_t1_hosts
        }
        # At least one healthy processor is accused whenever T1's data
        # was expected over a link.
        expected_comms = [
            c
            for c in schedule.all_comms()
            if c.source == "T1" and c.source_processor in healthy_t1_hosts
        ]
        if expected_comms:
            assert wrongly_accused


class TestStaggeredFailures:
    def test_two_failures_in_a_row_masked_with_npf2(self):
        problem = uniform_problem(linear_chain(4), processors=4, npf=2)
        result = schedule_ftbar(problem)
        algorithm = result.expanded_algorithm
        makespan = result.makespan
        # One crash at t=0 and a second one mid-iteration: still <= Npf
        # concurrent-or-sequential failures, still masked (§4.4: no
        # assumptions on the failure inter-arrival time).
        scenario = FailureScenario(
            [
                ProcessorFailure("P1", 0.0),
                ProcessorFailure("P2", makespan / 2),
            ]
        )
        trace = simulate(result.schedule, algorithm, scenario)
        assert trace.all_operations_delivered(algorithm)

    def test_three_staggered_failures_with_npf2_can_break(self):
        problem = uniform_problem(linear_chain(3), processors=3, npf=2)
        result = schedule_ftbar(problem)
        algorithm = result.expanded_algorithm
        scenario = FailureScenario(
            [
                ProcessorFailure("P1", 0.0),
                ProcessorFailure("P2", 0.1),
                ProcessorFailure("P3", 0.2),
            ]
        )
        trace = simulate(result.schedule, algorithm, scenario)
        assert not trace.all_operations_delivered(algorithm)


class TestMakespanCorners:
    def test_crash_of_idle_processor_is_free(self):
        # With npf=0 on 3 processors the schedule may leave one
        # processor empty; crashing it changes nothing.
        problem = uniform_problem(linear_chain(2), processors=3, npf=0)
        result = schedule_ftbar(problem)
        used = {e.processor for e in result.schedule.all_operations()}
        idle = set(result.schedule.processor_names()) - used
        if idle:
            trace = simulate(
                result.schedule,
                result.expanded_algorithm,
                FailureScenario.crash(idle.pop()),
            )
            assert trace.makespan() == pytest.approx(result.makespan)

    def test_simulation_is_repeatable(self):
        problem = uniform_problem(linear_chain(3), processors=3, npf=1)
        result = schedule_ftbar(problem)
        scenario = FailureScenario.crash("P1", at=1.0)
        first = simulate(result.schedule, result.expanded_algorithm, scenario)
        second = simulate(result.schedule, result.expanded_algorithm, scenario)
        assert first.makespan() == second.makespan()
        assert [o.status for o in first.operations] == [
            o.status for o in second.operations
        ]
