"""Unit tests for the immutable scheduled events."""

import pytest

from repro.schedule.events import ScheduledComm, ScheduledOperation


class TestScheduledOperation:
    def test_duration(self):
        event = ScheduledOperation(1.0, 3.5, "A", 0, "P1")
        assert event.duration == 2.5

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="ends"):
            ScheduledOperation(2.0, 1.0, "A", 0, "P1")

    def test_rejects_negative_replica(self):
        with pytest.raises(ValueError, match="replica"):
            ScheduledOperation(0.0, 1.0, "A", -1, "P1")

    def test_label(self):
        assert ScheduledOperation(0.0, 1.0, "A", 1, "P3").label() == "A/1@P3"

    def test_shifted(self):
        event = ScheduledOperation(1.0, 2.0, "A", 0, "P1")
        moved = event.shifted(3.0)
        assert (moved.start, moved.end) == (4.0, 5.0)
        assert event.start == 1.0

    def test_ordering_by_start(self):
        early = ScheduledOperation(0.0, 1.0, "B", 0, "P1")
        late = ScheduledOperation(2.0, 3.0, "A", 0, "P1")
        assert sorted([late, early]) == [early, late]

    def test_duplicated_flag_defaults_false(self):
        assert not ScheduledOperation(0.0, 1.0, "A", 0, "P1").duplicated


class TestScheduledComm:
    def make(self) -> ScheduledComm:
        return ScheduledComm(
            start=1.0,
            end=2.0,
            source="I",
            target="A",
            source_replica=0,
            target_replica=1,
            link="L1.3",
            source_processor="P1",
            target_processor="P3",
        )

    def test_duration_and_edge(self):
        comm = self.make()
        assert comm.duration == 1.0
        assert comm.edge == ("I", "A")

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="ends"):
            ScheduledComm(2.0, 1.0, "I", "A", 0, 0, "L", "P1", "P2")

    def test_label(self):
        assert self.make().label() == "I/0->A/1 on L1.3"

    def test_hop_index_defaults_to_zero(self):
        assert self.make().hop_index == 0
