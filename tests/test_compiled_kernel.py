"""Randomized equivalence corpus for the compiled scheduling kernel.

``SchedulerOptions(compiled=True)`` must be a pure-performance change:
bit-identical replica placements, comm orders, observer ``StepRecord``
streams, *and* evaluation counters (the compiled plan cache reproduces
the PR-1 dirty-set semantics exactly, so its hit/miss pattern pins
against the object engine's).

The corpus spans 32 problems — npf in {0, 1, 2} x npl in {0, 1} x
ring / star / fully-connected / bus topologies x two seeds — plus the
scheduler option variants, the scalar (numpy-free) sweep fallback, the
pinned-memory fallback, and the HBP baseline's kernel path.  The
``PINNED_COUNTERS`` literals are the (pressure_evaluations, cache_hits)
pairs of the PR-1 incremental engine; with ``symmetry=False`` both
engines must keep landing on them exactly.  With symmetry pruning on
(the default) the *schedules and observer streams stay bit-identical*
but the counters drop on the symmetric topologies — those land on the
``PRUNED_COUNTERS`` pins (evaluations, hits, pruned pairs) instead;
ring (the route planner's relay tie-break is not rotation-equivariant)
and every npl >= 1 problem verify no usable group and keep the PR-1
values with zero pruned pairs.
"""

from __future__ import annotations

import pytest

from test_engine_equivalence import ftbar_fingerprint, ftbar_trace, hbp_fingerprint

from repro.baselines.hbp import schedule_hbp
from repro.core import kernel as kernel_module
from repro.core.compile import CompiledProblem
from repro.core.ftbar import FTBARScheduler, schedule_ftbar
from repro.core.options import SchedulerOptions
from repro.exceptions import CompiledFallbackWarning
from repro.hardware.topologies import ring, single_bus, star
from repro.problem import ProblemSpec
from repro.schedule.schedule import Schedule
from repro.timing.comm_times import CommunicationTimes
from repro.workloads.paper_example import build_problem
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem

OBJECT = SchedulerOptions(compiled=False)
OBJECT_LEGACY = SchedulerOptions(compiled=False, incremental=False)
COMPILED = SchedulerOptions()
COMPILED_NOSYM = SchedulerOptions(symmetry=False)
COMPILED_LEGACY = SchedulerOptions(incremental=False)

#: (pressure_evaluations, cache_hits) of the PR-1 incremental engine
#: over the corpus; the compiled engine must match them exactly.
PINNED_COUNTERS = {
    "fc4-npf0-seed21": (84, 160),
    "bus4-npf0-seed21": (72, 172),
    "ring4-npf0-seed21": (100, 140),
    "star4-npf0-seed21": (102, 138),
    "fc4-npf1-seed21": (72, 172),
    "bus4-npf1-seed21": (68, 184),
    "ring4-npf1-seed21": (72, 180),
    "star4-npf1-seed21": (78, 174),
    "fc4-npf2-seed21": (72, 180),
    "bus4-npf2-seed21": (72, 180),
    "ring4-npf2-seed21": (81, 171),
    "star4-npf2-seed21": (72, 180),
    "fc4-npf0-npl1-seed21": (52, 112),
    "ring4-npf0-npl1-seed21": (54, 110),
    "fc4-npf1-npl1-seed21": (60, 116),
    "ring4-npf1-npl1-seed21": (48, 128),
    "fc4-npf0-seed22": (80, 160),
    "bus4-npf0-seed22": (68, 176),
    "ring4-npf0-seed22": (100, 140),
    "star4-npf0-seed22": (88, 144),
    "fc4-npf1-seed22": (72, 184),
    "bus4-npf1-seed22": (80, 156),
    "ring4-npf1-seed22": (82, 154),
    "star4-npf1-seed22": (96, 160),
    "fc4-npf2-seed22": (76, 180),
    "bus4-npf2-seed22": (80, 168),
    "ring4-npf2-seed22": (86, 166),
    "star4-npf2-seed22": (83, 169),
    "fc4-npf0-npl1-seed22": (69, 67),
    "ring4-npf0-npl1-seed22": (65, 71),
    "fc4-npf1-npl1-seed22": (66, 94),
    "ring4-npf1-npl1-seed22": (64, 96),
}

#: (pressure_evaluations, cache_hits, symmetry_pruned) of the default
#: engine (symmetry pruning on).  Labels without a usable group (rings,
#: npl >= 1) must reproduce their PR-1 pair with zero pruned pairs.
PRUNED_COUNTERS = {
    "bus4-npf0-seed21": (48, 122, 74),
    "bus4-npf0-seed22": (62, 156, 26),
    "bus4-npf1-seed21": (33, 92, 127),
    "bus4-npf1-seed22": (48, 88, 100),
    "bus4-npf2-seed21": (40, 96, 116),
    "bus4-npf2-seed22": (74, 148, 26),
    "fc4-npf0-npl1-seed21": (52, 112, 0),
    "fc4-npf0-npl1-seed22": (69, 67, 0),
    "fc4-npf0-seed21": (68, 134, 42),
    "fc4-npf0-seed22": (74, 140, 26),
    "fc4-npf1-npl1-seed21": (60, 116, 0),
    "fc4-npf1-npl1-seed22": (66, 94, 0),
    "fc4-npf1-seed21": (35, 86, 123),
    "fc4-npf1-seed22": (35, 89, 132),
    "fc4-npf2-seed21": (60, 161, 31),
    "fc4-npf2-seed22": (70, 160, 26),
    "ring4-npf0-npl1-seed21": (54, 110, 0),
    "ring4-npf0-npl1-seed22": (65, 71, 0),
    "ring4-npf0-seed21": (100, 140, 0),
    "ring4-npf0-seed22": (100, 140, 0),
    "ring4-npf1-npl1-seed21": (48, 128, 0),
    "ring4-npf1-npl1-seed22": (64, 96, 0),
    "ring4-npf1-seed21": (72, 180, 0),
    "ring4-npf1-seed22": (82, 154, 0),
    "ring4-npf2-seed21": (81, 171, 0),
    "ring4-npf2-seed22": (86, 166, 0),
    "star4-npf0-seed21": (83, 111, 46),
    "star4-npf0-seed22": (83, 127, 22),
    "star4-npf1-seed21": (55, 133, 64),
    "star4-npf1-seed22": (76, 127, 53),
    "star4-npf2-seed21": (57, 141, 54),
    "star4-npf2-seed22": (80, 159, 13),
}


@pytest.fixture(autouse=True)
def _vector_sweep_everywhere(monkeypatch):
    """Drop the scalar/vector size gate for this module.

    The corpus problems sit below ``_VECTOR_MIN_CELLS`` (a pure speed
    gate — both sweeps are bit-identical), and this module's job is to
    pin the *vector* machinery (replay pools, batched passes) against
    the object engine.  ``test_small_problem_gates_to_scalar_sweep``
    covers the gate itself.
    """
    monkeypatch.setattr(kernel_module, "_VECTOR_MIN_CELLS", 0)


def test_small_problem_gates_to_scalar_sweep(monkeypatch):
    """Below the size gate the kernel picks the scalar sweep (same bits)."""
    monkeypatch.setattr(kernel_module, "_VECTOR_MIN_CELLS", 1280)
    problem = corpus_case("fc4-npf1-seed21")
    scheduler = FTBARScheduler(problem, COMPILED)
    kernel = kernel_module.SchedulingKernel(
        scheduler._compiled,
        Schedule(
            processors=problem.architecture.processor_names(),
            links=problem.architecture.link_names(),
            npf=problem.npf,
        ),
    )
    assert not kernel._vector
    # A requested worker pool re-enables the vector sweep (only it can
    # be sharded); the gated run stays bit-identical either way.
    gated_trace = ftbar_trace(problem, COMPILED)
    monkeypatch.setattr(kernel_module, "_VECTOR_MIN_CELLS", 0)
    assert ftbar_trace(problem, COMPILED) == gated_trace


def _variant(problem: ProblemSpec, architecture, suffix: str) -> ProblemSpec:
    """The same workload on a different interconnect (uniform durations)."""
    reference = problem.architecture.link_names()[0]
    comm_times = CommunicationTimes()
    for edge in problem.algorithm.dependencies():
        for link in architecture.link_names():
            comm_times.set(
                edge, link, problem.comm_times.time_of(edge, reference)
            )
    return ProblemSpec(
        algorithm=problem.algorithm,
        architecture=architecture,
        exec_times=problem.exec_times,
        comm_times=comm_times,
        npf=problem.npf,
        rtc=problem.rtc,
        name=f"{problem.name}-{suffix}",
        npl=problem.npl,
    )


def corpus_case(label: str) -> ProblemSpec:
    """Rebuild one corpus problem from its label (deterministic)."""
    parts = label.split("-")
    topology = parts[0]
    npf = int(parts[1][3:])
    npl = 1 if "npl1" in parts else 0
    seed = int(parts[-1][4:])
    operations = 12 if npl else 15
    ccr = 1.0 if npl else 1.5
    base = generate_problem(
        RandomWorkloadConfig(
            operations=operations, ccr=ccr, processors=4, npf=npf, seed=seed
        )
    )
    if topology == "bus4":
        problem = _variant(base, single_bus(4), "bus")
    elif topology == "ring4":
        problem = _variant(base, ring(4), "ring")
    elif topology == "star4":
        problem = _variant(base, star(4), "star")
    else:
        problem = base
    problem.npl = npl
    return problem


@pytest.mark.parametrize("label", sorted(PINNED_COUNTERS))
def test_compiled_bit_identical_and_counters_pinned(label):
    """Compiled == object engine, incremental on and off, over the corpus."""
    problem = corpus_case(label)
    object_trace = ftbar_trace(problem, OBJECT)
    compiled_trace = ftbar_trace(problem, COMPILED)
    assert compiled_trace == object_trace, f"{label}: engines diverge"
    assert ftbar_trace(problem, COMPILED_LEGACY) == ftbar_trace(
        problem, OBJECT_LEGACY
    ), f"{label}: non-incremental paths diverge"
    assert ftbar_trace(problem, COMPILED_NOSYM) == object_trace, (
        f"{label}: symmetry=False diverges"
    )
    object_result = schedule_ftbar(problem, OBJECT)
    nosym_result = schedule_ftbar(problem, COMPILED_NOSYM)
    counters = (
        nosym_result.stats.pressure_evaluations,
        nosym_result.stats.cache_hits,
    )
    assert counters == (
        object_result.stats.pressure_evaluations,
        object_result.stats.cache_hits,
    ), f"{label}: counters diverge between engines"
    assert counters == PINNED_COUNTERS[label], (
        f"{label}: counters moved from the pinned PR-1 values"
    )
    pruned_result = schedule_ftbar(problem, COMPILED)
    assert (
        pruned_result.stats.pressure_evaluations,
        pruned_result.stats.cache_hits,
        pruned_result.stats.symmetry_pruned,
    ) == PRUNED_COUNTERS[label], (
        f"{label}: symmetry-pruned counters moved from their pins"
    )
    assert object_result.stats.symmetry_pruned == 0
    assert nosym_result.stats.symmetry_pruned == 0


def test_scalar_sweep_matches_vector_sweep(monkeypatch):
    """The numpy-free fallback produces the same schedules and counters."""
    problem = corpus_case("fc4-npf1-seed21")
    # Corpus problems sit below the scalar/vector crossover, so the
    # vector leg must drop the size gate to actually exercise numpy.
    monkeypatch.setattr(kernel_module, "_VECTOR_MIN_CELLS", 0)
    vector_trace = ftbar_trace(problem, COMPILED)
    monkeypatch.setattr(kernel_module, "_np", None)
    scalar_trace = ftbar_trace(problem, COMPILED)
    assert scalar_trace == vector_trace
    result = schedule_ftbar(problem, COMPILED)
    assert (
        result.stats.pressure_evaluations,
        result.stats.cache_hits,
        result.stats.symmetry_pruned,
    ) == PRUNED_COUNTERS["fc4-npf1-seed21"]
    nosym = schedule_ftbar(problem, COMPILED_NOSYM)
    assert (
        nosym.stats.pressure_evaluations, nosym.stats.cache_hits
    ) == PINNED_COUNTERS["fc4-npf1-seed21"]


def test_pinned_memory_problem_uses_scalar_sweep_bit_identically():
    """Memory halves (pinned pools) fall back to the scalar sweep."""
    problem = build_problem()
    assert ftbar_trace(problem, COMPILED) == ftbar_trace(problem, OBJECT)


@pytest.mark.parametrize(
    "options",
    [
        {"processor_aware_pressure": True},
        {"duplication": False},
        {"processor_aware_pressure": True, "duplication": False},
    ],
    ids=["aware", "no-duplication", "aware-no-duplication"],
)
def test_option_variants_bit_identical(options):
    problem = generate_problem(
        RandomWorkloadConfig(operations=20, ccr=2.0, processors=4, npf=1, seed=31)
    )
    compiled = ftbar_trace(problem, SchedulerOptions(**options))
    plain = ftbar_trace(problem, SchedulerOptions(compiled=False, **options))
    assert compiled == plain


def test_link_insertion_falls_back_to_object_path():
    """Gap insertion is not modelled by the kernel; compiled is a no-op."""
    problem = generate_problem(
        RandomWorkloadConfig(operations=16, ccr=1.0, processors=4, npf=1, seed=5)
    )
    insertion = SchedulerOptions(link_insertion=True)
    with pytest.warns(CompiledFallbackWarning, match="link_insertion"):
        assert FTBARScheduler(problem, insertion)._compiled is None
    with pytest.warns(CompiledFallbackWarning):
        insertion_trace = ftbar_trace(problem, insertion)
    assert insertion_trace == ftbar_trace(
        problem, SchedulerOptions(link_insertion=True, compiled=False)
    )


def test_fallback_warning_only_on_compiled_link_insertion(recwarn):
    """Neither plain compiled nor explicit object runs warn."""
    problem = generate_problem(
        RandomWorkloadConfig(operations=10, ccr=1.0, processors=3, npf=1, seed=5)
    )
    schedule_ftbar(problem, COMPILED)
    schedule_ftbar(
        problem, SchedulerOptions(compiled=False, link_insertion=True)
    )
    assert not [
        w for w in recwarn if issubclass(w.category, CompiledFallbackWarning)
    ]


def test_heterogeneous_problem_bit_identical():
    problem = generate_problem(
        RandomWorkloadConfig(
            operations=24, ccr=1.0, processors=4, npf=1, seed=17,
            heterogeneous=True,
        )
    )
    assert ftbar_trace(problem, COMPILED) == ftbar_trace(problem, OBJECT)


def test_hbp_kernel_path_bit_identical_with_matching_counters():
    for seed in (21, 22):
        problem = generate_problem(
            RandomWorkloadConfig(operations=16, ccr=1.0, processors=4, npf=1, seed=seed)
        )
        compiled = schedule_hbp(problem)
        plain = schedule_hbp(problem, compiled=False)
        assert hbp_fingerprint(problem) == hbp_fingerprint(problem)
        events = lambda r: [  # noqa: E731 - tiny local shape helper
            (e.operation, e.replica, e.processor, e.start, e.end)
            for e in r.schedule.all_operations()
        ]
        comms = lambda r: [  # noqa: E731
            (c.source, c.target, c.source_replica, c.target_replica, c.link,
             c.start, c.end)
            for c in r.schedule.all_comms()
        ]
        assert events(compiled) == events(plain)
        assert comms(compiled) == comms(plain)
        assert compiled.stats.pair_evaluations == plain.stats.pair_evaluations
        assert compiled.stats.pair_cache_hits == plain.stats.pair_cache_hits


def test_static_tables_match_pressure_calculator():
    """CompiledProblem's S̄/tail equal PressureCalculator's, bit for bit."""
    problem = generate_problem(
        RandomWorkloadConfig(operations=30, ccr=2.0, processors=4, npf=1, seed=3)
    )
    scheduler = FTBARScheduler(problem)
    sbar, tail = scheduler._pressure.static_tables()
    assert scheduler._compiled.sbar == sbar
    assert scheduler._compiled.tail == tail


def test_compiled_problem_tables_are_dense_and_name_ordered():
    problem = generate_problem(
        RandomWorkloadConfig(operations=10, ccr=1.0, processors=3, npf=1, seed=1)
    )
    compiled = CompiledProblem(
        problem.algorithm, problem.architecture, problem.exec_times,
        problem.comm_times, problem.npf, problem.npl,
    )
    assert compiled.op_names == problem.algorithm.operation_names()
    assert compiled.proc_names == problem.architecture.processor_names()
    assert list(compiled.op_ids.values()) == sorted(compiled.op_ids.values())
    for op, o in compiled.op_ids.items():
        for proc, p in compiled.proc_ids.items():
            assert compiled.exe[o * compiled.n_procs + p] == (
                problem.exec_times.time_of(op, proc)
            )
