"""Unit tests for the placement planner (link slots, arrivals, plans)."""

import pytest

from repro.core.placement import LinkState, PlacementPlanner, commit_plan
from repro.graphs.algorithm import from_dependencies
from repro.hardware.architecture import Architecture
from repro.hardware.link import Link
from repro.hardware.topologies import fully_connected
from repro.schedule.schedule import Schedule
from repro.timing.comm_times import CommunicationTimes
from repro.timing.exec_times import ExecutionTimes


def planner_setup(npf: int = 1, link_insertion: bool = False):
    algorithm = from_dependencies([("A", "B")])
    architecture = fully_connected(3)
    exec_times = ExecutionTimes.uniform(["A", "B"], architecture.processor_names(), 1.0)
    comm_times = CommunicationTimes.uniform(
        [("A", "B")], architecture.link_names(), 0.5
    )
    planner = PlacementPlanner(
        algorithm, architecture, exec_times, comm_times, npf,
        link_insertion=link_insertion,
    )
    schedule = Schedule(
        processors=architecture.processor_names(),
        links=architecture.link_names(),
        npf=npf,
    )
    return planner, schedule


class TestLinkState:
    def make_schedule(self) -> Schedule:
        schedule = Schedule(processors=["P1", "P2"], links=["L"], npf=0)
        schedule.place_comm("A", "B", 0, 0, "L", 2.0, 1.0, "P1", "P2")
        return schedule

    def test_append_mode_waits_for_last_comm(self):
        state = LinkState(self.make_schedule())
        assert state.preview("L", 0.0, 1.0) == (3.0, 4.0)

    def test_append_mode_respects_ready_time(self):
        state = LinkState(self.make_schedule())
        assert state.preview("L", 5.0, 1.0) == (5.0, 6.0)

    def test_insertion_mode_uses_gap(self):
        state = LinkState(self.make_schedule(), insertion=True)
        assert state.preview("L", 0.0, 1.0) == (0.0, 1.0)

    def test_insertion_mode_skips_too_small_gap(self):
        state = LinkState(self.make_schedule(), insertion=True)
        assert state.preview("L", 1.5, 1.0) == (3.0, 4.0)

    def test_reserve_consumes_slot(self):
        state = LinkState(self.make_schedule())
        assert state.reserve("L", 0.0, 1.0) == (3.0, 4.0)
        assert state.preview("L", 0.0, 1.0) == (4.0, 5.0)

    def test_reservations_do_not_touch_schedule(self):
        schedule = self.make_schedule()
        LinkState(schedule).reserve("L", 0.0, 1.0)
        assert schedule.comm_count() == 1


class TestPlanning:
    def test_source_operation_plan(self):
        planner, schedule = planner_setup()
        plan = planner.plan("A", "P1", schedule)
        assert plan.s_best == 0.0
        assert plan.s_worst == 0.0
        assert plan.feeds == []

    def test_plan_forbidden_pair_is_none(self):
        planner, schedule = planner_setup()
        algorithm = from_dependencies([("A", "B")])
        architecture = fully_connected(2)
        exec_times = ExecutionTimes.uniform(["A", "B"], ["P1", "P2"], 1.0)
        exec_times.forbid("A", "P1")
        comm_times = CommunicationTimes.uniform([("A", "B")], ["L1.2"], 0.5)
        planner = PlacementPlanner(algorithm, architecture, exec_times, comm_times, 0)
        schedule = Schedule(processors=["P1", "P2"], links=["L1.2"], npf=0)
        assert planner.plan("A", "P1", schedule) is None

    def test_plan_on_occupied_processor_is_none(self):
        planner, schedule = planner_setup()
        schedule.place_operation("A", "P1", 0.0, 1.0)
        assert planner.plan("A", "P1", schedule) is None

    def test_local_predecessor_feed(self):
        planner, schedule = planner_setup()
        schedule.place_operation("A", "P1", 0.0, 1.0)
        schedule.place_operation("A", "P2", 0.0, 1.0)
        plan = planner.plan("B", "P1", schedule)
        feed = plan.feeds[0]
        assert feed.local_end == 1.0
        assert feed.comms == []
        # Intra-processor: data is there when the replica completes.
        assert plan.s_best == pytest.approx(1.0)
        assert plan.s_worst == pytest.approx(1.0)

    def test_remote_feeds_from_every_replica(self):
        planner, schedule = planner_setup()
        schedule.place_operation("A", "P1", 0.0, 1.0)
        schedule.place_operation("A", "P2", 0.0, 1.0)
        plan = planner.plan("B", "P3", schedule)
        feed = plan.feeds[0]
        assert len(feed.arrivals) == 2
        assert len(feed.comms) == 2
        # Both arrive at 1.5 over parallel links L1.3 and L2.3.
        assert feed.arrivals == [pytest.approx(1.5), pytest.approx(1.5)]
        assert {c.link for c in feed.comms} == {"L1.3", "L2.3"}

    def test_plan_reports_reserved_and_consulted_links(self):
        planner, schedule = planner_setup()
        schedule.place_operation("A", "P1", 0.0, 1.0)
        schedule.place_operation("A", "P2", 0.0, 1.0)
        plan = planner.plan("B", "P3", schedule)
        assert plan.reserved_links == {"L1.3", "L2.3"}
        # One direct link per processor pair: consulted == reserved and
        # the plan is repairable by the incremental cache.
        assert plan.consulted_links == {"L1.3", "L2.3"}
        assert plan.repairable
        assert dict(plan.link_thresholds()) == {
            "L1.3": pytest.approx(1.0),
            "L2.3": pytest.approx(1.0),
        }

    def test_source_plan_reserves_nothing(self):
        planner, schedule = planner_setup()
        plan = planner.plan("A", "P1", schedule)
        assert plan.reserved_links == frozenset()
        assert plan.link_thresholds() == ()

    def test_s_worst_is_kth_smallest_arrival(self):
        planner, schedule = planner_setup(npf=1)
        schedule.place_operation("A", "P1", 0.0, 1.0)
        schedule.place_operation("A", "P2", 2.0, 1.0)  # later replica
        plan = planner.plan("B", "P3", schedule)
        assert plan.s_best == pytest.approx(1.5)   # first arrival
        assert plan.s_worst == pytest.approx(3.5)  # 2nd arrival (npf+1 = 2)

    def test_processor_availability_clamps_start(self):
        planner, schedule = planner_setup()
        schedule.place_operation("A", "P1", 0.0, 1.0)
        schedule.place_operation("A", "P2", 0.0, 1.0)
        schedule.place_operation("X", "P3", 0.0, 9.0)
        plan = planner.plan("B", "P3", schedule)
        assert plan.s_best == pytest.approx(9.0)

    def test_critical_feed_identifies_lip(self):
        algorithm = from_dependencies([("A", "C"), ("B", "C")])
        architecture = fully_connected(3)
        exec_times = ExecutionTimes.uniform(
            ["A", "B", "C"], architecture.processor_names(), 1.0
        )
        comm_times = CommunicationTimes()
        for edge, duration in ((("A", "C"), 0.5), (("B", "C"), 5.0)):
            for link in architecture.link_names():
                comm_times.set(edge, link, duration)
        planner = PlacementPlanner(algorithm, architecture, exec_times, comm_times, 0)
        schedule = Schedule(
            processors=architecture.processor_names(),
            links=architecture.link_names(),
            npf=0,
        )
        schedule.place_operation("A", "P1", 0.0, 1.0)
        schedule.place_operation("B", "P2", 0.0, 1.0)
        plan = planner.plan("C", "P3", schedule)
        assert plan.critical_feed().predecessor == "B"

    def test_critical_feed_none_for_source(self):
        planner, schedule = planner_setup()
        assert planner.plan("A", "P1", schedule).critical_feed() is None

    def test_multi_hop_transfer(self):
        algorithm = from_dependencies([("A", "B")])
        architecture = Architecture("line")
        for name in ("P1", "P2", "P3"):
            architecture.add_processor(name)
        architecture.add_link(Link.between("L1.2", "P1", "P2"))
        architecture.add_link(Link.between("L2.3", "P2", "P3"))
        exec_times = ExecutionTimes.uniform(["A", "B"], ("P1", "P2", "P3"), 1.0)
        comm_times = CommunicationTimes.uniform(
            [("A", "B")], ("L1.2", "L2.3"), 0.5
        )
        planner = PlacementPlanner(algorithm, architecture, exec_times, comm_times, 0)
        schedule = Schedule(
            processors=("P1", "P2", "P3"), links=("L1.2", "L2.3"), npf=0
        )
        schedule.place_operation("A", "P1", 0.0, 1.0)
        plan = planner.plan("B", "P3", schedule)
        feed = plan.feeds[0]
        assert len(feed.comms) == 2
        assert [c.hop_index for c in feed.comms] == [0, 1]
        assert feed.comms[0].target_processor == "P2"
        assert feed.comms[1].source_processor == "P2"
        assert feed.arrivals == [pytest.approx(2.0)]  # 1 + 0.5 + 0.5


class TestCommit:
    def test_commit_places_operation_and_comms(self):
        planner, schedule = planner_setup()
        schedule.place_operation("A", "P1", 0.0, 1.0)
        schedule.place_operation("A", "P2", 0.0, 1.0)
        plan = planner.plan("B", "P3", schedule)
        event = commit_plan(plan, schedule)
        assert event.start == pytest.approx(1.5)
        assert schedule.comm_count() == 2
        for comm in schedule.comms_toward("B", event.replica):
            assert comm.target_replica == event.replica

    def test_commit_with_explicit_start(self):
        planner, schedule = planner_setup()
        plan = planner.plan("A", "P1", schedule)
        event = commit_plan(plan, schedule, start=4.0)
        assert event.start == 4.0

    def test_commit_duplicated_flag(self):
        planner, schedule = planner_setup()
        plan = planner.plan("A", "P1", schedule)
        assert commit_plan(plan, schedule, duplicated=True).duplicated
