"""Sanity checks of the public API surface.

Every name exported in ``__all__`` must resolve and carry a docstring —
the contract a downstream user relies on.
"""

import inspect

import pytest

import repro
import repro.analysis
import repro.baselines
import repro.campaign
import repro.core
import repro.graphs
import repro.hardware
import repro.schedule
import repro.simulation
import repro.timing
import repro.workloads

_PACKAGES = [
    repro,
    repro.analysis,
    repro.baselines,
    repro.campaign,
    repro.core,
    repro.graphs,
    repro.hardware,
    repro.schedule,
    repro.simulation,
    repro.timing,
    repro.workloads,
]


@pytest.mark.parametrize("package", _PACKAGES, ids=lambda p: p.__name__)
def test_all_exports_resolve(package):
    for name in package.__all__:
        assert hasattr(package, name), f"{package.__name__}.{name} missing"


@pytest.mark.parametrize("package", _PACKAGES, ids=lambda p: p.__name__)
def test_all_is_sorted(package):
    exported = list(package.__all__)
    assert exported == sorted(exported), f"{package.__name__}.__all__ unsorted"


@pytest.mark.parametrize("package", _PACKAGES, ids=lambda p: p.__name__)
def test_public_callables_have_docstrings(package):
    for name in package.__all__:
        member = getattr(package, name)
        if inspect.isclass(member) or inspect.isfunction(member):
            assert member.__doc__, f"{package.__name__}.{name} lacks a docstring"


def test_package_docstrings():
    for package in _PACKAGES:
        assert package.__doc__, f"{package.__name__} lacks a docstring"


def test_version_is_exposed():
    assert repro.__version__ == "1.0.0"


def test_key_entry_points_are_top_level():
    for name in (
        "schedule_ftbar",
        "schedule_hbp",
        "schedule_non_fault_tolerant",
        "simulate",
        "ProblemSpec",
        "FailureScenario",
        "SchedulerOptions",
    ):
        assert name in repro.__all__, name


def test_exceptions_form_one_hierarchy():
    from repro.exceptions import (
        ArchitectureError,
        ConstraintError,
        GraphError,
        InfeasibleReplicationError,
        ReproError,
        ScheduleValidationError,
        SchedulingError,
        SerializationError,
        SimulationError,
        TimingError,
    )

    for error in (
        ArchitectureError,
        ConstraintError,
        GraphError,
        ScheduleValidationError,
        SchedulingError,
        SerializationError,
        SimulationError,
        TimingError,
    ):
        assert issubclass(error, ReproError)
    assert issubclass(InfeasibleReplicationError, SchedulingError)
