"""Campaign subsystem: determinism, caching, resumability, CLI.

The two properties the subsystem promises (and the ISSUE pins):

* a killed-then-resumed campaign's JSONL store is byte-identical —
  modulo the volatile envelope (timestamps, wall clock, provenance) —
  to an uninterrupted run's store;
* ``jobs=1`` and ``jobs=4`` produce identical result sets on the golden
  corpus seeds, and re-running against the same cache reports 100%
  cache hits without recomputing anything.
"""

import pytest

from repro.analysis.experiments import (
    _overheads_for_problem,
    run_overhead_vs_operations,
)
from repro.campaign import (
    CampaignSpec,
    FailureSpec,
    ResultStore,
    ScheduleCache,
    WorkloadSpec,
    build_problem,
    campaign_from_dict,
    campaign_status,
    campaign_to_dict,
    campaign_report,
    expand_jobs,
    load_campaign,
    run_campaign,
    save_campaign,
)
from repro.cli import main
from repro.exceptions import SerializationError
from repro.schedule.serialization import (
    problem_content_hash,
    schedule_content_hash,
)
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem


def golden_spec(**overrides) -> CampaignSpec:
    """Three workload families x two topologies x the golden corpus seeds."""
    values = dict(
        name="golden",
        workloads=(
            WorkloadSpec(family="random", size=18),
            WorkloadSpec(family="in_tree", size=2),
            WorkloadSpec(family="gauss", size=3),
        ),
        topologies=("fully_connected", "single_bus"),
        processors=(4,),
        npfs=(1,),
        ccrs=(1.0,),
        seeds=(1, 2, 3),
        measures=("ftbar", "non_ft", "degraded"),
        failures=(FailureSpec(processors=(0,)),),
    )
    values.update(overrides)
    return CampaignSpec(**values)


class TestSpec:
    def test_round_trip(self, tmp_path):
        spec = golden_spec()
        path = tmp_path / "spec.json"
        save_campaign(spec, path)
        assert load_campaign(path) == spec

    def test_dict_round_trip_preserves_failures_and_options(self):
        spec = golden_spec(options={"link_insertion": True})
        rebuilt = campaign_from_dict(campaign_to_dict(spec))
        assert rebuilt.failures == spec.failures
        assert rebuilt.scheduler_options().link_insertion

    def test_unknown_family_rejected(self):
        with pytest.raises(SerializationError):
            WorkloadSpec(family="mystery", size=4)

    def test_unknown_topology_rejected(self):
        with pytest.raises(SerializationError):
            golden_spec(topologies=("torus",))

    def test_unknown_measure_rejected(self):
        with pytest.raises(SerializationError):
            golden_spec(measures=("ftbar", "latency"))

    def test_unknown_scheduler_option_rejected(self):
        with pytest.raises(SerializationError):
            golden_spec(options={"turbo": True})

    def test_gauss_size_one_rejected(self):
        # gauss needs a >= 2x2 matrix; clamping would silently collapse
        # the size=1 and size=2 grid points into one job.
        with pytest.raises(SerializationError):
            WorkloadSpec(family="gauss", size=1)

    def test_grid_size(self):
        assert golden_spec().grid_size == 3 * 2 * 1 * 1 * 1 * 3


class TestContentHash:
    def test_problem_hash_insensitive_to_insertion_order(self):
        problem = generate_problem(
            RandomWorkloadConfig(operations=6, ccr=1.0, processors=3, npf=1, seed=7)
        )
        # Rebuild the same problem with operations/timing inserted in
        # reverse order: the dumps differ byte-wise, the hashes must not.
        from repro.graphs.algorithm import AlgorithmGraph
        from repro.problem import ProblemSpec
        from repro.timing.comm_times import CommunicationTimes
        from repro.timing.exec_times import ExecutionTimes

        algorithm = AlgorithmGraph(problem.algorithm.name)
        for name in reversed(problem.algorithm.operation_names()):
            algorithm.add_operation(name)
        for source, target in reversed(problem.algorithm.dependencies()):
            algorithm.add_dependency(
                source, target, problem.algorithm.data_size(source, target)
            )
        exec_times = ExecutionTimes()
        for (op, proc), t in reversed(list(problem.exec_times.entries().items())):
            exec_times.set(op, proc, t)
        comm_times = CommunicationTimes()
        for (edge, link), t in reversed(list(problem.comm_times.entries().items())):
            comm_times.set(edge, link, t)
        shuffled = ProblemSpec(
            algorithm=algorithm,
            architecture=problem.architecture,
            exec_times=exec_times,
            comm_times=comm_times,
            npf=problem.npf,
            rtc=problem.rtc,
            name=problem.name,
        )
        assert problem_content_hash(shuffled) == problem_content_hash(problem)

    def test_problem_hash_sensitive_to_content(self):
        one = generate_problem(
            RandomWorkloadConfig(operations=6, ccr=1.0, processors=3, npf=1, seed=7)
        )
        other = generate_problem(
            RandomWorkloadConfig(operations=6, ccr=1.0, processors=3, npf=2, seed=7)
        )
        assert problem_content_hash(one) != problem_content_hash(other)

    def test_schedule_hash_is_hex_sha256(self):
        from repro.core.ftbar import schedule_ftbar

        problem = build_problem(WorkloadSpec("in_tree", 2), "fully_connected", 3, 1, 1.0, 0)
        digest = schedule_content_hash(schedule_ftbar(problem).schedule)
        assert len(digest) == 64
        int(digest, 16)


class TestExpansion:
    def test_deterministic_order_and_digests(self):
        jobs_a = expand_jobs(golden_spec())
        jobs_b = expand_jobs(golden_spec())
        assert [j.digest for j in jobs_a] == [j.digest for j in jobs_b]
        assert [j.index for j in jobs_a] == sorted(j.index for j in jobs_a)

    def test_duplicate_grid_points_collapse(self):
        spec = golden_spec(seeds=(1, 1, 2))
        jobs = expand_jobs(spec)
        assert spec.grid_size == 3 * 2 * 3
        assert len(jobs) == 3 * 2 * 2  # the repeated seed never runs twice

    def test_random_fully_connected_matches_legacy_generator(self):
        job_problem = build_problem(
            WorkloadSpec(family="random", size=18), "fully_connected", 4, 1, 1.0, 2
        )
        legacy = generate_problem(
            RandomWorkloadConfig(operations=18, ccr=1.0, processors=4, npf=1, seed=2)
        )
        assert problem_content_hash(job_problem) == problem_content_hash(legacy)


class TestRunDeterminism:
    @pytest.fixture(scope="class")
    def runs(self):
        spec = golden_spec()
        serial = run_campaign(spec, jobs=1)
        parallel = run_campaign(spec, jobs=4)
        return spec, serial, parallel

    def test_jobs1_and_jobs4_identical_result_sets(self, runs):
        _, serial, parallel = runs
        assert serial.records == parallel.records
        assert serial.executed == parallel.executed == serial.total_jobs

    def test_failure_injection_is_masked_under_npf1(self, runs):
        _, serial, _ = runs
        for record in serial.records.values():
            for entry in record["failures"]:
                assert entry["delivered"] is True

    def test_out_of_range_failure_scenario_is_skipped_whole(self):
        # A scenario naming a processor the architecture lacks must be
        # skipped, not silently weakened to its in-range subset.
        spec = golden_spec(
            workloads=(WorkloadSpec(family="in_tree", size=2),),
            topologies=("fully_connected",),
            seeds=(1,),
            failures=(FailureSpec(processors=(0, 7)),),
        )
        report = run_campaign(spec, jobs=1)
        (record,) = report.records.values()
        (entry,) = record["failures"]
        assert entry["skipped"] is True
        assert entry["processors"] == []
        assert entry["delivered"] is None

    def test_records_in_order_follow_grid(self, runs):
        spec, serial, _ = runs
        names = [r["problem"] for r in serial.records_in_order()]
        assert len(names) == len(expand_jobs(spec))


class TestStoreAndResume:
    def test_killed_then_resumed_store_matches_uninterrupted(self, tmp_path):
        spec = golden_spec(
            workloads=(WorkloadSpec(family="random", size=10),),
            topologies=("fully_connected",),
        )
        full_store = ResultStore(tmp_path / "full.jsonl")
        run_campaign(spec, jobs=1, store=full_store)

        # Simulate a kill after 1 completed job: truncate, then resume.
        lines = (tmp_path / "full.jsonl").read_text().splitlines(keepends=True)
        resumed_path = tmp_path / "resumed.jsonl"
        resumed_path.write_text("".join(lines[:1]))
        report = run_campaign(
            spec, jobs=1, store=ResultStore(resumed_path), resume=True
        )
        assert report.resumed == 1
        assert report.executed == len(lines) - 1
        assert (
            ResultStore(resumed_path).diffable_lines()
            == full_store.diffable_lines()
        )

    def test_torn_tail_line_is_skipped(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.append("a" * 64, {"problem": "x"})
        with open(store.path, "a") as handle:
            handle.write('{"digest": "b", "rec')  # the kill landed mid-write
        assert store.digests() == {"a" * 64}

    def test_append_after_torn_tail_repairs_the_store(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.append("a" * 64, {"problem": "x"})
        with open(store.path, "a") as handle:
            handle.write('{"digest": "b", "rec')
        store.append("c" * 64, {"problem": "y"})
        store.append("d" * 64, {"problem": "z"})
        # The torn fragment is gone, every surviving line readable.
        assert store.digests() == {"a" * 64, "c" * 64, "d" * 64}
        assert len(list(store.lines())) == 3

    def test_corrupt_middle_line_skipped_and_counted(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.append("a" * 64, {"problem": "x"})
        with open(store.path, "a") as handle:
            handle.write("garbage\n")
        store.append("b" * 64, {"problem": "y"})
        lines = list(store.lines())
        assert [line["digest"] for line in lines] == ["a" * 64, "b" * 64]
        assert store.corrupt_lines == [{"line": 2, "chars": len("garbage")}]
        assert store.digests() == {"a" * 64, "b" * 64}

    def test_resume_without_prior_store_runs_everything(self, tmp_path):
        spec = golden_spec(
            workloads=(WorkloadSpec(family="in_tree", size=2),),
            topologies=("fully_connected",),
            seeds=(1,),
        )
        report = run_campaign(
            spec, jobs=1, store=tmp_path / "s.jsonl", resume=True
        )
        assert report.resumed == 0 and report.executed == 1


class TestCache:
    def test_second_run_is_all_cache_hits_with_identical_store(self, tmp_path):
        spec = golden_spec()
        cache = ScheduleCache(tmp_path / "cache")
        first = run_campaign(spec, jobs=2, store=tmp_path / "a.jsonl", cache=cache)
        second = run_campaign(spec, jobs=2, store=tmp_path / "b.jsonl", cache=cache)
        assert first.executed == first.total_jobs
        assert second.cache_hits == second.total_jobs
        assert second.executed == 0
        assert ResultStore(tmp_path / "a.jsonl").load() == ResultStore(
            tmp_path / "b.jsonl"
        ).load()

    def test_cache_entry_contains_schedule(self, tmp_path):
        spec = golden_spec(
            workloads=(WorkloadSpec(family="gauss", size=3),),
            topologies=("fully_connected",),
            seeds=(1,),
        )
        cache = ScheduleCache(tmp_path / "cache")
        report = run_campaign(spec, jobs=1, cache=cache)
        (digest,) = report.records
        entry = cache.get(digest)
        assert entry["schedule"]["operations"]
        assert entry["record"] == report.records[digest]

    def test_corrupt_entry_is_a_miss_and_recomputed(self, tmp_path):
        spec = golden_spec(
            workloads=(WorkloadSpec(family="in_tree", size=2),),
            topologies=("fully_connected",),
            seeds=(1,),
        )
        cache = ScheduleCache(tmp_path / "cache")
        report = run_campaign(spec, jobs=1, cache=cache)
        (digest,) = report.records
        cache.path_for(digest).write_text("{ torn")
        again = run_campaign(spec, jobs=1, cache=cache)
        assert again.executed == 1 and again.cache_hits == 0
        assert cache.get(digest)["record"] == report.records[digest]

    def test_len_counts_entries(self, tmp_path):
        cache = ScheduleCache(tmp_path / "cache")
        assert len(cache) == 0
        cache.put("ab" + "0" * 62, {"digest": "ab" + "0" * 62})
        assert len(cache) == 1


class TestStatusAndReport:
    def test_status_counts_pending(self, tmp_path):
        spec = golden_spec(
            workloads=(WorkloadSpec(family="random", size=8),),
            topologies=("fully_connected",),
        )
        store = ResultStore(tmp_path / "s.jsonl")
        status = campaign_status(spec, store)
        assert status.done == 0 and status.pending == 3
        run_campaign(spec, jobs=1, store=store)
        status = campaign_status(spec, store)
        assert status.done == 3 and status.pending == 0
        assert "3/3" in status.summary()

    def test_report_aggregates_by_family_and_topology(self, tmp_path):
        spec = golden_spec()
        store = ResultStore(tmp_path / "s.jsonl")
        run_campaign(spec, jobs=1, store=store)
        text = campaign_report(spec, store)
        for family in ("random", "in_tree", "gauss"):
            assert family in text
        for topology in ("fully_connected", "single_bus"):
            assert topology in text
        assert "delivered" in text

    def test_report_on_empty_store(self, tmp_path):
        spec = golden_spec()
        text = campaign_report(spec, ResultStore(tmp_path / "none.jsonl"))
        assert "no recorded results" in text


class TestSweepsThroughCampaign:
    def test_figure9_point_matches_direct_measurement(self):
        """The campaign path reproduces the legacy per-graph numbers."""
        counts, graphs, seed = (8,), 2, 11
        sweep = run_overhead_vs_operations(
            operation_counts=counts, ccr=5.0, graphs_per_point=graphs, seed=seed
        )
        direct = [
            _overheads_for_problem(
                generate_problem(
                    RandomWorkloadConfig(
                        operations=8, ccr=5.0, processors=4, npf=1,
                        seed=seed + 1000 * index + 8,
                    )
                )
            )
            for index in range(graphs)
        ]
        point = sweep.points[0]
        assert point.ftbar_absence == pytest.approx(
            sum(m.ftbar_absence for m in direct) / graphs, abs=0
        )
        assert point.hbp_absence == pytest.approx(
            sum(m.hbp_absence for m in direct) / graphs, abs=0
        )

    def test_figure9_jobs_parameter_changes_nothing(self):
        kwargs = dict(
            operation_counts=(8,), ccr=5.0, graphs_per_point=2, seed=11
        )
        assert run_overhead_vs_operations(**kwargs) == run_overhead_vs_operations(
            **kwargs, jobs=3
        )

    def test_interrupted_campaign_aborts_the_sweep(self, monkeypatch):
        from repro.campaign import runner

        def interrupted(spec, **kwargs):
            report = runner.CampaignReport(
                name=spec.name, grid_size=spec.grid_size, total_jobs=1
            )
            report.interrupted = True
            return report

        monkeypatch.setattr(runner, "run_campaign", interrupted)
        with pytest.raises(KeyboardInterrupt):
            run_overhead_vs_operations(
                operation_counts=(8,), graphs_per_point=1, seed=11
            )

    def test_jobs_zero_resolves_to_cpu_count(self):
        spec = golden_spec(
            workloads=(WorkloadSpec(family="in_tree", size=2),),
            topologies=("fully_connected",),
            seeds=(1,),
        )
        report = run_campaign(spec, jobs=0)
        assert report.executed == 1


class TestCampaignCli:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        path = tmp_path / "spec.json"
        save_campaign(
            golden_spec(
                workloads=(WorkloadSpec(family="random", size=8),),
                topologies=("fully_connected",),
                seeds=(1, 2),
                measures=("ftbar", "non_ft"),
                failures=(),
            ),
            path,
        )
        return path

    def test_run_status_report(self, spec_path, capsys):
        assert main(["campaign", "run", str(spec_path), "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "2/2 jobs" in out
        assert (spec_path.parent / "spec-results.jsonl").exists()

        assert main(["campaign", "status", str(spec_path)]) == 0
        assert "2/2 jobs done" in capsys.readouterr().out

        assert main(["campaign", "report", str(spec_path)]) == 0
        assert "random" in capsys.readouterr().out

    def test_second_run_reports_full_cache_hits(self, spec_path, capsys):
        main(["campaign", "run", str(spec_path), "--quiet"])
        capsys.readouterr()
        assert main(["campaign", "run", str(spec_path), "--quiet"]) == 0
        assert "cache hits: 2/2" in capsys.readouterr().out
        # Cache-served reruns must not grow the result store.
        store = spec_path.parent / "spec-results.jsonl"
        assert len(store.read_text().splitlines()) == 2
        main(["campaign", "run", str(spec_path), "--quiet"])
        assert len(store.read_text().splitlines()) == 2

    def test_no_cache_flag_recomputes(self, spec_path, capsys):
        main(["campaign", "run", str(spec_path), "--quiet", "--no-cache"])
        capsys.readouterr()
        main(["campaign", "run", str(spec_path), "--quiet", "--no-cache"])
        out = capsys.readouterr().out
        assert "cache hits: 0/2" in out
        assert not (spec_path.parent / ".schedule-cache").exists()

    def test_resume_skips_recorded_jobs(self, spec_path, capsys):
        main(["campaign", "run", str(spec_path), "--quiet", "--no-cache"])
        capsys.readouterr()
        assert (
            main(["campaign", "run", str(spec_path), "--quiet", "--no-cache", "--resume"])
            == 0
        )
        assert "resumed: 2" in capsys.readouterr().out

    def test_bench_jobs_flag(self, capsys):
        assert main(["bench", "figure9", "--graphs", "1", "--jobs", "2"]) == 0
        assert "Figure 9" in capsys.readouterr().out


class TestExampleSpecs:
    @pytest.mark.parametrize(
        "name,expected_jobs",
        [("campaign_smoke.json", 8), ("campaign_grid.json", 48)],
    )
    def test_shipped_specs_expand(self, name, expected_jobs):
        from pathlib import Path

        spec = load_campaign(Path(__file__).parent.parent / "examples" / name)
        assert len(expand_jobs(spec)) == expected_jobs
