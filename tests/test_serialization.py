"""Round-trip tests for the JSON serialization layer."""

import math

import pytest

from repro.exceptions import SerializationError
from repro.graphs.algorithm import AlgorithmGraph
from repro.graphs.operations import OperationKind
from repro.schedule.serialization import (
    algorithm_from_dict,
    algorithm_to_dict,
    architecture_from_dict,
    architecture_to_dict,
    comm_times_from_dict,
    comm_times_to_dict,
    exec_times_from_dict,
    exec_times_to_dict,
    load_json,
    problem_from_dict,
    problem_to_dict,
    rtc_from_dict,
    rtc_to_dict,
    save_json,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.core.ftbar import schedule_ftbar
from repro.timing.constraints import RealTimeConstraints
from repro.workloads.paper_example import build_problem

from tests.util import uniform_problem
from repro.graphs.builder import diamond


class TestAlgorithmRoundTrip:
    def test_roundtrip_preserves_everything(self):
        graph = AlgorithmGraph("demo")
        graph.add_operation("I", OperationKind.EXTERNAL_IO)
        graph.add_operation("M", OperationKind.MEMORY)
        graph.add_operation("A")
        graph.add_dependency("I", "A", data_size=2.0)
        graph.add_dependency("M", "A")
        rebuilt = algorithm_from_dict(algorithm_to_dict(graph))
        assert rebuilt.name == "demo"
        assert rebuilt.operation_names() == graph.operation_names()
        assert rebuilt.dependencies() == graph.dependencies()
        assert rebuilt.data_size("I", "A") == 2.0
        assert rebuilt.operation("M").is_memory()

    def test_invalid_document_raises(self):
        with pytest.raises(SerializationError):
            algorithm_from_dict({"no_operations": []})


class TestArchitectureRoundTrip:
    def test_roundtrip(self, paper_problem):
        original = paper_problem.architecture
        rebuilt = architecture_from_dict(architecture_to_dict(original))
        assert rebuilt.processor_names() == original.processor_names()
        assert rebuilt.link_names() == original.link_names()
        assert rebuilt.link("L1.2").endpoints == original.link("L1.2").endpoints

    def test_bus_kind_preserved(self):
        from repro.hardware.topologies import single_bus

        rebuilt = architecture_from_dict(architecture_to_dict(single_bus(3)))
        assert rebuilt.link("BUS").is_bus()

    def test_invalid_document_raises(self):
        with pytest.raises(SerializationError):
            architecture_from_dict({"links": []})


class TestTimingRoundTrip:
    def test_exec_times_with_infinity(self, paper_problem):
        rebuilt = exec_times_from_dict(exec_times_to_dict(paper_problem.exec_times))
        assert rebuilt.time_of("A", "P2") == 1.5
        assert math.isinf(rebuilt.time_of("I", "P3"))

    def test_exec_times_document_encodes_inf_as_string(self, paper_problem):
        document = exec_times_to_dict(paper_problem.exec_times)
        inf_entries = [e for e in document["entries"] if e["time"] == "inf"]
        assert len(inf_entries) == 2  # (I, P3) and (O, P2)

    def test_comm_times_roundtrip(self, paper_problem):
        rebuilt = comm_times_from_dict(comm_times_to_dict(paper_problem.comm_times))
        assert rebuilt.time_of(("I", "A"), "L1.2") == 1.75

    def test_rtc_roundtrip(self):
        rtc = RealTimeConstraints(global_deadline=16.0, operation_deadlines={"O": 15.0})
        rebuilt = rtc_from_dict(rtc_to_dict(rtc))
        assert rebuilt.global_deadline == 16.0
        assert rebuilt.operation_deadlines == {"O": 15.0}

    def test_invalid_time_value(self):
        with pytest.raises(SerializationError):
            exec_times_from_dict(
                {"entries": [{"operation": "A", "processor": "P", "time": "soon"}]}
            )


class TestProblemRoundTrip:
    def test_roundtrip_is_schedulable(self, paper_problem):
        document = problem_to_dict(paper_problem)
        rebuilt = problem_from_dict(document)
        assert rebuilt.npf == 1
        result = schedule_ftbar(rebuilt)
        assert result.makespan == pytest.approx(15.05)

    def test_missing_section_raises(self):
        with pytest.raises(SerializationError):
            problem_from_dict({"name": "x"})


class TestScheduleRoundTrip:
    def test_roundtrip_preserves_events(self, paper_result):
        document = schedule_to_dict(paper_result.schedule)
        rebuilt = schedule_from_dict(document)
        assert rebuilt.makespan() == paper_result.schedule.makespan()
        assert rebuilt.replica_count() == paper_result.schedule.replica_count()
        assert rebuilt.comm_count() == paper_result.schedule.comm_count()
        assert rebuilt.npf == 1
        original_table = {
            (e.operation, e.replica): (e.processor, e.start, e.duplicated)
            for e in paper_result.schedule.all_operations()
        }
        rebuilt_table = {
            (e.operation, e.replica): (e.processor, e.start, e.duplicated)
            for e in rebuilt.all_operations()
        }
        assert original_table == rebuilt_table

    def test_invalid_document_raises(self):
        with pytest.raises(SerializationError):
            schedule_from_dict({"name": "x"})


class TestFileHelpers:
    def test_save_and_load(self, tmp_path):
        problem = uniform_problem(diamond(), processors=2)
        path = tmp_path / "problem.json"
        save_json(problem_to_dict(problem), path)
        assert problem_from_dict(load_json(path)).name == problem.name

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(SerializationError, match="invalid JSON"):
            load_json(path)
