"""Self-healing store and cache I/O under injected faults.

The hardening contract: a fault on a store append costs one backoff,
never a record; a corrupt cache entry is quarantined and recomputed,
never served; a full disk (ENOSPC) flips the cache read-only with one
warning, never fails a job.
"""

import json

import pytest

from repro.campaign import ResultStore, ScheduleCache
from repro.exceptions import CacheDegradedWarning
from repro.faultinject import (
    InjectedFault,
    configure,
    deconfigure,
    fired_faults,
    plan_from_dict,
)


@pytest.fixture(autouse=True)
def injection_off():
    deconfigure()
    yield
    deconfigure()


def install(*triggers, seed=7):
    configure(plan_from_dict({"seed": seed, "triggers": list(triggers)}))


def sample_record(value=1):
    return {"value": value, "schedule_hash": "abc"}


class TestStoreSelfHealing:
    def test_torn_append_heals_on_retry(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.append("digest-0", sample_record(0))
        install(
            {
                "site": "store.append.write",
                "action": "torn_write",
                "nth": 1,  # the first write after the plan: digest-1
            }
        )
        store.append("digest-1", sample_record(1))
        assert len(fired_faults()) == 1
        # The retry repaired the torn tail and rewrote the full line.
        assert store.digests() == {"digest-0", "digest-1"}
        assert store.corrupt_lines == []
        text = store.path.read_text()
        assert text.endswith("\n") and len(text.splitlines()) == 2

    def test_fsync_fault_heals_on_retry(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        install(
            {
                "site": "store.append.fsync",
                "action": "raise",
                "probability": 1.0,
            }
        )
        # Keyed trigger: fires once per digest, the retry succeeds.
        store.append("digest-0", sample_record())
        assert store.digests() == {"digest-0"}
        assert len(fired_faults()) == 1

    def test_exhausted_append_raises(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        install(
            {
                "site": "store.append.write",
                "action": "raise",
                "nth": 1,
                "limit": 3,
            },
            {
                "site": "store.append.write",
                "action": "raise",
                "nth": 2,
            },
            {
                "site": "store.append.write",
                "action": "raise",
                "nth": 3,
            },
        )
        with pytest.raises(InjectedFault):
            store.append("digest-0", sample_record())

    def test_injected_corruption_is_skipped_and_counted(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        install({"site": "store.append.write", "action": "corrupt", "nth": 2})
        store.append("digest-0", sample_record(0))
        store.append("digest-1", sample_record(1))  # corrupted in place
        store.append("digest-2", sample_record(2))
        # ``corrupt`` is silent at write time (bit rot): detection
        # happens at read time, where the NUL byte breaks JSON parsing.
        assert store.digests() == {"digest-0", "digest-2"}
        assert [entry["line"] for entry in store.corrupt_lines] == [2]
        # The unrecorded digest is exactly what resume would recompute.
        store.append("digest-1", sample_record(1))
        assert store.digests() == {"digest-0", "digest-1", "digest-2"}


class TestCacheChecksums:
    def test_round_trip_is_checksummed(self, tmp_path):
        cache = ScheduleCache(tmp_path / "cache")
        digest = "a" * 64
        document = {"digest": digest, "record": sample_record()}
        path = cache.put(digest, document)
        assert path is not None
        envelope = json.loads(path.read_text())
        assert set(envelope) == {"checksum", "payload"}
        assert cache.get(digest) == document
        assert cache.pop_corruptions() == []

    def test_legacy_unwrapped_entry_still_served(self, tmp_path):
        cache = ScheduleCache(tmp_path / "cache")
        digest = "b" * 64
        document = {"digest": digest, "record": sample_record()}
        path = cache.path_for(digest)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps(document))
        assert cache.get(digest) == document

    def test_flipped_byte_quarantined(self, tmp_path):
        # Valid JSON, valid shape, wrong bytes: only the checksum sees it.
        cache = ScheduleCache(tmp_path / "cache")
        digest = "c" * 64
        document = {"digest": digest, "record": sample_record(1)}
        path = cache.put(digest, document)
        envelope = json.loads(path.read_text())
        envelope["payload"]["record"]["value"] = 2
        path.write_text(json.dumps(envelope))
        assert cache.get(digest) is None
        assert not path.exists()  # moved, not deleted: forensics
        (corruption,) = cache.pop_corruptions()
        assert corruption["reason"] == "checksum mismatch"
        quarantined = corruption["quarantined_to"]
        assert quarantined and json.loads(
            open(quarantined).read()
        )["payload"]["record"]["value"] == 2

    def test_unparseable_entry_quarantined(self, tmp_path):
        cache = ScheduleCache(tmp_path / "cache")
        digest = "d" * 64
        path = cache.path_for(digest)
        path.parent.mkdir(parents=True)
        path.write_text('{"checksum": "x", "payload": tor')
        assert cache.get(digest) is None
        (corruption,) = cache.pop_corruptions()
        assert corruption["reason"] == "unreadable entry"

    def test_wrong_digest_quarantined(self, tmp_path):
        cache = ScheduleCache(tmp_path / "cache")
        digest = "e" * 64
        document = {"digest": "f" * 64, "record": sample_record()}
        cache.path_for(digest).parent.mkdir(parents=True)
        cache.path_for(digest).write_text(json.dumps(document))
        assert cache.get(digest) is None
        (corruption,) = cache.pop_corruptions()
        assert corruption["reason"] == "digest mismatch"

    def test_injected_read_error_quarantines(self, tmp_path):
        cache = ScheduleCache(tmp_path / "cache")
        digest = "a1" + "f" * 62
        cache.put(digest, {"digest": digest, "record": sample_record()})
        install(
            {"site": "cache.get.read", "action": "raise", "probability": 1.0}
        )
        assert cache.get(digest) is None
        (corruption,) = cache.pop_corruptions()
        assert corruption["reason"] == "unreadable entry"

    def test_torn_cache_write_heals_on_retry(self, tmp_path):
        cache = ScheduleCache(tmp_path / "cache")
        digest = "b2" + "e" * 62
        install(
            {
                "site": "cache.put.write",
                "action": "torn_write",
                "probability": 1.0,
            }
        )
        document = {"digest": digest, "record": sample_record()}
        assert cache.put(digest, document) is not None
        assert cache.get(digest) == document


class TestCacheDegradation:
    def test_enospc_flips_read_only_with_one_warning(self, tmp_path):
        cache = ScheduleCache(tmp_path / "cache")
        served = "c3" + "d" * 62
        document = {"digest": served, "record": sample_record()}
        cache.put(served, document)
        install(
            {
                "site": "cache.put.write",
                "action": "raise",
                "errno": "ENOSPC",
                "probability": 1.0,
            }
        )
        with pytest.warns(CacheDegradedWarning):
            assert cache.put("d4" + "c" * 62, document) is None
        assert cache.degraded
        # ENOSPC is an answer: exactly one attempt, no retries.
        assert len(fired_faults()) == 1
        # Degraded means read-only, silently: no second warning, no
        # write attempts, but existing entries keep serving.
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert cache.put("e5" + "b" * 62, document) is None
        assert cache.get(served) == document
        assert len(fired_faults()) == 1  # the skipped put never hit disk

    def test_other_write_errors_do_not_degrade(self, tmp_path):
        cache = ScheduleCache(tmp_path / "cache")
        digest = "f6" + "a" * 62
        install(
            {
                "site": "cache.put.write",
                "action": "raise",
                "errno": "EIO",
                "nth": 1,
                "limit": 3,
            },
            {"site": "cache.put.write", "action": "raise", "nth": 2},
            {"site": "cache.put.write", "action": "raise", "nth": 3},
        )
        document = {"digest": digest, "record": sample_record()}
        assert cache.put(digest, document) is None
        assert not cache.degraded  # EIO exhausts retries, never degrades
        deconfigure()
        assert cache.put(digest, document) is not None
