"""Tests for the non-fault-tolerant baseline schedulers."""

import pytest

from repro.baselines.list_scheduler import (
    schedule_basic,
    schedule_non_fault_tolerant,
)
from repro.graphs.builder import diamond, linear_chain
from repro.schedule.validation import validate_schedule

from tests.util import uniform_problem


class TestNonFaultTolerant:
    def test_forces_npf_zero(self):
        problem = uniform_problem(diamond(), processors=3, npf=1)
        result = schedule_non_fault_tolerant(problem)
        assert result.schedule.npf == 0
        for operation in problem.algorithm.operation_names():
            assert len(result.schedule.replicas_of(operation)) >= 1

    def test_original_problem_untouched(self):
        problem = uniform_problem(diamond(), processors=3, npf=1)
        schedule_non_fault_tolerant(problem)
        assert problem.npf == 1

    def test_shorter_than_fault_tolerant(self):
        from repro.core.ftbar import schedule_ftbar

        problem = uniform_problem(diamond(), processors=3, npf=1, comm_time=2.0)
        ft = schedule_ftbar(problem)
        non_ft = schedule_non_fault_tolerant(problem)
        assert non_ft.makespan <= ft.makespan

    def test_schedule_is_valid_without_replication(self):
        problem = uniform_problem(diamond(), processors=3, npf=1)
        result = schedule_non_fault_tolerant(problem)
        report = validate_schedule(
            result.schedule,
            result.expanded_algorithm,
            problem.architecture,
            problem.exec_times,
            problem.comm_times,
            require_replication=False,
        )
        assert report.ok, str(report)


class TestBasic:
    def test_no_duplication_in_basic(self):
        problem = uniform_problem(linear_chain(4), processors=3, npf=1,
                                  comm_time=5.0)
        result = schedule_basic(problem)
        assert result.schedule.duplicated_count() == 0
        assert result.schedule.npf == 0

    def test_basic_never_beats_nonft_with_duplication(self):
        problem = uniform_problem(linear_chain(4), processors=3, npf=1,
                                  comm_time=5.0)
        basic = schedule_basic(problem)
        non_ft = schedule_non_fault_tolerant(problem)
        assert non_ft.makespan <= basic.makespan

    def test_name_suffix(self):
        problem = uniform_problem(diamond(), processors=2)
        assert "basic" in schedule_basic(problem).schedule.name
        assert "nonft" in schedule_non_fault_tolerant(problem).schedule.name
