"""Unit tests for the Schedule container (timelines, snapshots)."""

import pytest

from repro.exceptions import ScheduleValidationError
from repro.schedule.schedule import Schedule


def empty() -> Schedule:
    return Schedule(processors=["P1", "P2"], links=["L"], npf=1)


class TestPlacement:
    def test_place_operation_assigns_replica_indices(self):
        schedule = empty()
        first = schedule.place_operation("A", "P1", 0.0, 1.0)
        second = schedule.place_operation("A", "P2", 0.0, 1.0)
        assert (first.replica, second.replica) == (0, 1)

    def test_operation_twice_on_same_processor_rejected(self):
        schedule = empty()
        schedule.place_operation("A", "P1", 0.0, 1.0)
        with pytest.raises(ScheduleValidationError, match="already has a replica"):
            schedule.place_operation("A", "P1", 2.0, 1.0)

    def test_unknown_processor_rejected(self):
        with pytest.raises(ScheduleValidationError, match="unknown processor"):
            empty().place_operation("A", "P9", 0.0, 1.0)

    def test_overlap_on_processor_rejected(self):
        schedule = empty()
        schedule.place_operation("A", "P1", 0.0, 2.0)
        with pytest.raises(ScheduleValidationError, match="overlaps"):
            schedule.place_operation("B", "P1", 1.0, 2.0)

    def test_back_to_back_operations_allowed(self):
        schedule = empty()
        schedule.place_operation("A", "P1", 0.0, 2.0)
        schedule.place_operation("B", "P1", 2.0, 1.0)
        assert [e.operation for e in schedule.operations_on("P1")] == ["A", "B"]

    def test_insertion_into_gap_allowed(self):
        schedule = empty()
        schedule.place_operation("A", "P1", 0.0, 1.0)
        schedule.place_operation("B", "P1", 5.0, 1.0)
        schedule.place_operation("C", "P1", 2.0, 1.0)
        assert [e.operation for e in schedule.operations_on("P1")] == ["A", "C", "B"]

    def test_place_comm(self):
        schedule = empty()
        schedule.place_operation("A", "P1", 0.0, 1.0)
        comm = schedule.place_comm("A", "B", 0, 0, "L", 1.0, 0.5, "P1", "P2")
        assert comm.end == 1.5
        assert schedule.comms_on("L") == (comm,)

    def test_comm_on_unknown_link_rejected(self):
        with pytest.raises(ScheduleValidationError, match="unknown link"):
            empty().place_comm("A", "B", 0, 0, "L9", 0.0, 1.0, "P1", "P2")

    def test_comm_overlap_rejected(self):
        schedule = empty()
        schedule.place_comm("A", "B", 0, 0, "L", 0.0, 2.0, "P1", "P2")
        with pytest.raises(ScheduleValidationError, match="overlaps"):
            schedule.place_comm("C", "D", 0, 0, "L", 1.0, 2.0, "P1", "P2")

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            empty().place_operation("A", "P1", 1.0, -0.5)

    def test_needs_a_processor(self):
        with pytest.raises(ScheduleValidationError, match="at least one"):
            Schedule(processors=[])


class TestQueries:
    def populated(self) -> Schedule:
        schedule = empty()
        schedule.place_operation("A", "P1", 0.0, 1.0)
        schedule.place_operation("A", "P2", 0.0, 1.5)
        schedule.place_operation("B", "P1", 1.0, 2.0, duplicated=True)
        schedule.place_comm("A", "B", 1, 0, "L", 1.5, 0.5, "P2", "P1")
        return schedule

    def test_replicas_of(self):
        schedule = self.populated()
        assert [r.processor for r in schedule.replicas_of("A")] == ["P1", "P2"]
        assert schedule.replicas_of("Z") == ()

    def test_replica_lookup(self):
        schedule = self.populated()
        assert schedule.replica("A", 1).processor == "P2"
        with pytest.raises(ScheduleValidationError, match="no replica"):
            schedule.replica("A", 5)

    def test_replica_on(self):
        schedule = self.populated()
        assert schedule.replica_on("A", "P2").replica == 1
        assert schedule.replica_on("A", "P9") is None

    def test_scheduled_operations(self):
        assert self.populated().scheduled_operations() == ("A", "B")

    def test_is_scheduled(self):
        schedule = self.populated()
        assert schedule.is_scheduled("A")
        assert not schedule.is_scheduled("Z")

    def test_all_operations_sorted_by_time(self):
        events = self.populated().all_operations()
        assert [e.start for e in events] == sorted(e.start for e in events)

    def test_comms_toward(self):
        schedule = self.populated()
        assert len(schedule.comms_toward("B", 0)) == 1
        assert schedule.comms_toward("B", 1) == ()

    def test_comms_for_edge(self):
        schedule = self.populated()
        assert len(schedule.comms_for_edge("A", "B")) == 1
        assert schedule.comms_for_edge("B", "A") == ()

    def test_availability(self):
        schedule = self.populated()
        assert schedule.processor_available("P1") == 3.0
        assert schedule.processor_available("P2") == 1.5
        assert schedule.link_available("L") == 2.0

    def test_availability_of_unknown_resource(self):
        with pytest.raises(ScheduleValidationError):
            self.populated().processor_available("P9")
        with pytest.raises(ScheduleValidationError):
            self.populated().link_available("L9")

    def test_link_gaps(self):
        schedule = empty()
        schedule.place_comm("A", "B", 0, 0, "L", 1.0, 1.0, "P1", "P2")
        schedule.place_comm("C", "D", 0, 0, "L", 4.0, 1.0, "P1", "P2")
        assert schedule.link_gaps("L") == ((0.0, 1.0), (2.0, 4.0))

    def test_makespan(self):
        assert self.populated().makespan() == 3.0
        assert empty().makespan() == 0.0

    def test_counters(self):
        schedule = self.populated()
        assert schedule.replica_count() == 3
        assert schedule.comm_count() == 1
        assert schedule.duplicated_count() == 1

    def test_summary_mentions_makespan(self):
        assert "makespan=3" in self.populated().summary()


class TestSnapshot:
    def test_restore_discards_later_placements(self):
        schedule = empty()
        schedule.place_operation("A", "P1", 0.0, 1.0)
        saved = schedule.snapshot()
        schedule.place_operation("B", "P1", 1.0, 1.0)
        schedule.place_comm("A", "B", 0, 0, "L", 1.0, 1.0, "P1", "P2")
        schedule.restore(saved)
        assert schedule.scheduled_operations() == ("A",)
        assert schedule.comm_count() == 0
        assert schedule.makespan() == 1.0

    def test_snapshot_is_immutable_view(self):
        schedule = empty()
        schedule.place_operation("A", "P1", 0.0, 1.0)
        saved = schedule.snapshot()
        schedule.place_operation("B", "P2", 0.0, 1.0)
        # The snapshot still reflects the old state.
        assert set(saved.replicas) == {"A"}

    def test_restore_then_continue(self):
        schedule = empty()
        saved = schedule.snapshot()
        schedule.place_operation("A", "P1", 0.0, 1.0)
        schedule.restore(saved)
        schedule.place_operation("A", "P2", 0.0, 1.0)
        assert schedule.replica_on("A", "P2") is not None
        assert schedule.replica_on("A", "P1") is None
