"""Tests for link failures — the paper's declared limitation (§7).

"Our solution can only tolerate processor failures.  We are currently
working on new solutions to take communication link failures ... into
account."  The simulator models broken media anyway, which lets these
tests demonstrate (a) that a single bus failure breaks an FTBAR
schedule built on a shared bus, and (b) that on fully connected
point-to-point architectures the replicated comms happen to take
link-disjoint paths, so single link failures are often masked
*incidentally* — without any guarantee.
"""

import math

import pytest

from repro.core.ftbar import schedule_ftbar
from repro.exceptions import SimulationError
from repro.graphs.builder import diamond, fork_join
from repro.hardware.topologies import single_bus
from repro.problem import ProblemSpec
from repro.simulation.executor import DetectionPolicy, simulate
from repro.simulation.failures import (
    FailureScenario,
    LinkFailure,
    ProcessorFailure,
)
from repro.simulation.trace import EventStatus
from repro.timing.comm_times import CommunicationTimes
from repro.timing.exec_times import ExecutionTimes

from tests.util import uniform_problem


class TestLinkFailureModel:
    def test_link_down_constructor(self):
        scenario = FailureScenario.link_down("L1.2", at=3.0)
        assert scenario.failed_links() == ("L1.2",)
        assert scenario.link_is_up("L1.2", 2.9)
        assert not scenario.link_is_up("L1.2", 3.0)
        assert scenario.link_is_up("L9", 1e9)

    def test_mixed_scenario(self):
        scenario = FailureScenario(
            [ProcessorFailure("P1", 0.0), LinkFailure("L1.2", 5.0, 7.0)]
        )
        assert scenario.failed_processors() == ("P1",)
        assert scenario.failed_links() == ("L1.2",)
        assert len(scenario) == 2

    def test_link_up_during(self):
        scenario = FailureScenario([LinkFailure("L", 2.0, 4.0)])
        assert scenario.link_up_during("L", 0.0, 2.0)
        assert not scenario.link_up_during("L", 3.0, 5.0)

    def test_link_next_window(self):
        scenario = FailureScenario([LinkFailure("L", 2.0, 4.0)])
        assert scenario.link_next_window("L", 0.0, 1.0) == 0.0
        assert scenario.link_next_window("L", 1.5, 1.0) == 4.0
        permanent = FailureScenario.link_down("L", at=1.0)
        assert permanent.link_next_window("L", 2.0, 1.0) is None

    def test_invalid_interval_rejected(self):
        with pytest.raises(SimulationError):
            LinkFailure("L", 5.0, 3.0)

    def test_repr_includes_links(self):
        scenario = FailureScenario.link_down("L")
        assert "LinkFailure" in repr(scenario)


class TestLinkFailureExecution:
    def test_comms_on_dead_link_are_lost(self):
        problem = uniform_problem(diamond(), processors=3, npf=1, comm_time=0.3)
        result = schedule_ftbar(problem)
        used_links = {c.link for c in result.schedule.all_comms()}
        if not used_links:
            pytest.skip("schedule has no comms")
        victim = sorted(used_links)[0]
        trace = simulate(
            result.schedule,
            result.expanded_algorithm,
            FailureScenario.link_down(victim),
        )
        for comm in trace.comms:
            if comm.link == victim:
                assert comm.status in (EventStatus.LOST, EventStatus.SKIPPED)

    def test_transient_link_failure_delays_comms(self):
        problem = uniform_problem(diamond(), processors=3, npf=1, comm_time=0.3)
        result = schedule_ftbar(problem)
        comms = result.schedule.all_comms()
        if not comms:
            pytest.skip("schedule has no comms")
        first = comms[0]
        trace = simulate(
            result.schedule,
            result.expanded_algorithm,
            FailureScenario(
                [LinkFailure(first.link, 0.0, first.start + 3.0)]
            ),
        )
        outcome = next(
            c
            for c in trace.comms
            if c.link == first.link and c.status is EventStatus.COMPLETED
        )
        assert outcome.start >= first.start + 3.0 - 1e-9

    def test_single_link_failure_often_masked_on_fully_connected(self):
        # Fully connected: a replica's inputs come over pairwise
        # distinct links, so any single link failure leaves at least one
        # arrival per predecessor alive.
        problem = uniform_problem(fork_join(3), processors=3, npf=1,
                                  comm_time=1.0)
        result = schedule_ftbar(problem)
        algorithm = result.expanded_algorithm
        for link in problem.architecture.link_names():
            trace = simulate(
                result.schedule, algorithm, FailureScenario.link_down(link)
            )
            assert trace.all_operations_delivered(algorithm), link

    def test_bus_failure_breaks_the_schedule(self):
        # The paper's limitation, demonstrated: on a shared bus the
        # replicated comms have no disjoint path, so one medium failure
        # loses outputs whenever any data must cross processors.
        algorithm = fork_join(3)
        architecture = single_bus(3)
        exec_times = ExecutionTimes.uniform(
            algorithm.operation_names(), architecture.processor_names(), 1.0
        )
        comm_times = CommunicationTimes.uniform(
            algorithm.dependencies(), architecture.link_names(), 5.0
        )
        problem = ProblemSpec(
            algorithm=algorithm,
            architecture=architecture,
            exec_times=exec_times,
            comm_times=comm_times,
            npf=1,
            name="bus-victim",
        )
        result = schedule_ftbar(problem)
        trace = simulate(
            result.schedule,
            result.expanded_algorithm,
            FailureScenario.link_down("BUS"),
        )
        has_cross_processor_comms = bool(result.schedule.all_comms())
        if has_cross_processor_comms:
            assert not trace.all_operations_delivered(result.expanded_algorithm)

    def test_link_failure_shifts_across_iterations(self):
        from repro.simulation.iterative import simulate_iterations
        from repro.simulation.trace import EventStatus as ES

        problem = uniform_problem(diamond(), processors=3, npf=1, comm_time=0.3)
        result = schedule_ftbar(problem)
        comms = result.schedule.all_comms()
        if not comms:
            pytest.skip("schedule has no comms")
        victim_link = comms[0].link
        period = result.makespan
        # The link is down only during iteration 1; iterations 0 and 2
        # use it normally.
        run = simulate_iterations(
            result.schedule,
            result.expanded_algorithm,
            iterations=3,
            scenario=FailureScenario(
                [LinkFailure(victim_link, 1.0 * period, 2.0 * period)]
            ),
        )
        first = [c for c in run.iterations[0].trace.comms if c.link == victim_link]
        last = [c for c in run.iterations[2].trace.comms if c.link == victim_link]
        assert all(c.status is ES.COMPLETED for c in first)
        assert all(c.status is ES.COMPLETED for c in last)

    def test_link_failure_causes_detection_mistake(self):
        # With option 2 the receiver cannot distinguish "dead sender"
        # from "dead medium": it blames the (healthy) sender.
        problem = uniform_problem(diamond(), processors=3, npf=1, comm_time=0.3)
        result = schedule_ftbar(problem)
        comms = result.schedule.all_comms()
        if not comms:
            pytest.skip("schedule has no comms")
        victim = comms[0]
        trace = simulate(
            result.schedule,
            result.expanded_algorithm,
            FailureScenario.link_down(victim.link),
            DetectionPolicy.TIMEOUT_ARRAY,
        )
        accused = trace.detections.get(victim.target_processor, {})
        assert victim.source_processor in accused
