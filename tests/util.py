"""Shared helpers for the test suite."""

from __future__ import annotations

from repro.graphs.algorithm import AlgorithmGraph
from repro.hardware.topologies import fully_connected
from repro.problem import ProblemSpec
from repro.timing.comm_times import CommunicationTimes
from repro.timing.constraints import RealTimeConstraints
from repro.timing.exec_times import ExecutionTimes


def uniform_problem(
    algorithm: AlgorithmGraph,
    processors: int = 3,
    exec_time: float = 1.0,
    comm_time: float = 0.5,
    npf: int = 0,
    rtc: RealTimeConstraints | None = None,
    name: str = "test-problem",
) -> ProblemSpec:
    """A problem with uniform timings on a fully connected architecture."""
    architecture = fully_connected(processors)
    exec_times = ExecutionTimes.uniform(
        algorithm.operation_names(), architecture.processor_names(), exec_time
    )
    comm_times = CommunicationTimes.uniform(
        algorithm.dependencies(), architecture.link_names(), comm_time
    )
    return ProblemSpec(
        algorithm=algorithm,
        architecture=architecture,
        exec_times=exec_times,
        comm_times=comm_times,
        npf=npf,
        rtc=rtc or RealTimeConstraints(),
        name=name,
    )
