"""Tests for the FTBAR step observer (StepRecord stream)."""

import pytest

from repro.core.ftbar import StepRecord, schedule_ftbar
from repro.graphs.builder import diamond

from tests.util import uniform_problem


def run_with_observer(problem):
    records = []
    result = schedule_ftbar(problem, observer=records.append)
    return result, records


class TestStepRecords:
    def test_one_record_per_operation(self):
        problem = uniform_problem(diamond(), processors=3, npf=1)
        _, records = run_with_observer(problem)
        assert len(records) == 4
        assert [r.step for r in records] == [1, 2, 3, 4]

    def test_first_step_schedules_the_source(self):
        problem = uniform_problem(diamond(), processors=3, npf=1)
        _, records = run_with_observer(problem)
        assert records[0].operation == "A"
        assert records[0].candidates == ("A",)

    def test_selected_operation_has_npf_plus_one_processors(self):
        problem = uniform_problem(diamond(), processors=3, npf=1)
        _, records = run_with_observer(problem)
        for record in records:
            assert len(record.processors) == 2
            assert len(set(record.processors)) == 2

    def test_pressures_cover_candidates_and_processors(self):
        problem = uniform_problem(diamond(), processors=3, npf=1)
        _, records = run_with_observer(problem)
        step3 = records[1]  # B and C both candidates after A
        assert set(step3.candidates) == {"B", "C"}
        for operation in step3.candidates:
            for processor in ("P1", "P2", "P3"):
                assert (operation, processor) in step3.pressures

    def test_urgency_matches_selected_pressures(self):
        problem = uniform_problem(diamond(), processors=3, npf=1)
        _, records = run_with_observer(problem)
        for record in records:
            kept = sorted(
                record.pressures[(record.operation, processor)]
                for processor in record.processors
            )
            assert record.urgency == pytest.approx(max(kept))

    def test_makespans_monotonically_nondecreasing(self):
        problem = uniform_problem(diamond(), processors=3, npf=1)
        result, records = run_with_observer(problem)
        makespans = [r.makespan for r in records]
        assert makespans == sorted(makespans)
        assert makespans[-1] == pytest.approx(result.makespan)

    def test_observer_does_not_change_the_schedule(self):
        problem = uniform_problem(diamond(), processors=3, npf=1)
        with_observer, _ = run_with_observer(problem)
        without = schedule_ftbar(problem)
        assert with_observer.makespan == without.makespan

    def test_paper_example_steps(self, paper_problem):
        records = []
        schedule_ftbar(paper_problem, observer=records.append)
        assert len(records) == 9
        assert records[0].operation == "I"  # the only source
        assert records[-1].operation == "O"  # the only sink


class TestBusComparison:
    def test_bus_serialization_is_costly(self):
        from repro.analysis.experiments import run_bus_comparison

        points = run_bus_comparison(
            ccrs=(2.0,), operations=12, graphs_per_point=2, seed=5
        )
        point = points[0]
        assert point.bus_makespan >= point.p2p_makespan - 1e-6

    def test_bus_variant_preserves_durations(self):
        from repro.analysis.experiments import _bus_variant
        from repro.workloads.random_dag import (
            RandomWorkloadConfig,
            generate_problem,
        )

        problem = generate_problem(
            RandomWorkloadConfig(operations=8, ccr=1.0, seed=3)
        )
        bus_problem = _bus_variant(problem)
        assert bus_problem.architecture.link_names() == ("BUS",)
        reference = problem.architecture.link_names()[0]
        for edge in problem.algorithm.dependencies():
            assert bus_problem.comm_times.time_of(edge, "BUS") == (
                problem.comm_times.time_of(edge, reference)
            )
