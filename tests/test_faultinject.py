"""The failpoint registry and plan model (``repro.faultinject``).

The contract under test: injection is a zero-cost no-op until a plan is
configured; with a plan, faults fire *deterministically* — the per-site
RNG is SHA-256 over (seed, site, key), so the same plan and seed fire
on the same payloads whatever the interleaving — and every fired fault
is recorded for replay forensics.
"""

import errno
import json

import pytest

from repro.exceptions import FaultPlanError
from repro.faultinject import (
    FAILPOINT_SITES,
    InjectedFault,
    active_plan,
    configure,
    configure_from_env,
    deconfigure,
    derive_unit,
    failpoint,
    fired_faults,
    hit_counts,
    is_active,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    set_worker,
)

SITE = "worker.execute"


@pytest.fixture(autouse=True)
def injection_off():
    """Every test starts and ends with injection disabled."""
    deconfigure()
    yield
    deconfigure()


def make_plan(*triggers, seed=7):
    return plan_from_dict({"seed": seed, "triggers": list(triggers)})


class TestDeriveUnit:
    def test_uniform_range_and_determinism(self):
        draws = {derive_unit(7, SITE, token) for token in range(200)}
        assert all(0.0 <= value < 1.0 for value in draws)
        assert len(draws) == 200  # no collisions on distinct tokens
        assert derive_unit(7, SITE, "abc") == derive_unit(7, SITE, "abc")

    def test_seed_site_and_token_all_matter(self):
        base = derive_unit(7, SITE, "abc")
        assert derive_unit(8, SITE, "abc") != base
        assert derive_unit(7, "store.append.write", "abc") != base
        assert derive_unit(7, SITE, "abd") != base


class TestPlanValidation:
    def test_unknown_site_rejected_when_strict(self):
        with pytest.raises(FaultPlanError, match="unknown site"):
            make_plan({"site": "no.such.site", "action": "raise", "nth": 1})

    def test_unknown_site_allowed_when_lenient(self):
        plan = plan_from_dict(
            {"triggers": [{"site": "bench.x", "action": "raise", "nth": 1}]},
            strict=False,
        )
        assert plan.sites() == {"bench.x"}

    def test_unknown_action_rejected(self):
        with pytest.raises(FaultPlanError, match="action"):
            make_plan({"site": SITE, "action": "explode", "nth": 1})

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fields"):
            make_plan({"site": SITE, "action": "raise", "when": "always"})

    def test_unconditional_trigger_rejected(self):
        with pytest.raises(FaultPlanError, match="every hit"):
            make_plan({"site": SITE, "action": "raise"})

    def test_probability_bounds(self):
        with pytest.raises(FaultPlanError, match="probability"):
            make_plan({"site": SITE, "action": "raise", "probability": 1.5})
        with pytest.raises(FaultPlanError, match="probability"):
            make_plan({"site": SITE, "action": "raise", "probability": 0.0})

    def test_unknown_errno_rejected(self):
        with pytest.raises(FaultPlanError, match="errno"):
            make_plan(
                {"site": SITE, "action": "raise", "nth": 1, "errno": "EBOGUS"}
            )

    def test_unknown_exception_rejected(self):
        with pytest.raises(FaultPlanError, match="exception"):
            make_plan(
                {
                    "site": SITE,
                    "action": "raise",
                    "nth": 1,
                    "exception": "NotAClass",
                }
            )

    def test_fraction_and_limit_bounds(self):
        with pytest.raises(FaultPlanError, match="fraction"):
            make_plan(
                {
                    "site": SITE,
                    "action": "torn_write",
                    "nth": 1,
                    "fraction": 1.0,
                }
            )
        with pytest.raises(FaultPlanError, match="limit"):
            make_plan({"site": SITE, "action": "raise", "nth": 1, "limit": 0})

    def test_round_trip(self):
        plan = make_plan(
            {"site": SITE, "action": "raise", "nth": 2, "errno": "ENOSPC"},
            {
                "site": "store.append.write",
                "action": "torn_write",
                "probability": 0.4,
                "fraction": 0.3,
                "limit": 2,
            },
        )
        assert plan_from_dict(plan_to_dict(plan)) == plan

    def test_load_plan_bad_json(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{not json")
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            load_plan(path)

    def test_seed_override(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps(
                {
                    "seed": 1,
                    "triggers": [{"site": SITE, "action": "raise", "nth": 1}],
                }
            )
        )
        assert load_plan(path).seed == 1
        assert load_plan(path, seed=99).seed == 99

    def test_catalog_documents_every_site(self):
        assert len(FAILPOINT_SITES) >= 14
        assert all(description for description in FAILPOINT_SITES.values())


class TestRuntime:
    def test_disabled_is_noop(self):
        assert failpoint(SITE, key="anything") is None
        assert not is_active()
        assert hit_counts() == {}
        assert fired_faults() == []

    def test_nth_hit_fires_exactly_once(self):
        configure(make_plan({"site": SITE, "action": "raise", "nth": 2}))
        assert failpoint(SITE) is None
        with pytest.raises(InjectedFault):
            failpoint(SITE)
        assert failpoint(SITE) is None
        assert hit_counts() == {SITE: 3}
        assert len(fired_faults()) == 1

    def test_raise_carries_errno(self):
        configure(
            make_plan(
                {"site": SITE, "action": "raise", "nth": 1, "errno": "ENOSPC"}
            )
        )
        with pytest.raises(InjectedFault) as caught:
            failpoint(SITE)
        assert caught.value.errno == errno.ENOSPC

    def test_raise_named_exception_class(self):
        configure(
            make_plan(
                {
                    "site": SITE,
                    "action": "raise",
                    "nth": 1,
                    "exception": "RuntimeError",
                }
            )
        )
        with pytest.raises(RuntimeError):
            failpoint(SITE)

    def test_probability_is_keyed_and_deterministic(self):
        trigger = {"site": SITE, "action": "raise", "probability": 0.5}
        keys = [f"digest-{index}" for index in range(50)]
        expected = {
            key for key in keys if derive_unit(7, SITE, key) < 0.5
        }
        assert 0 < len(expected) < 50  # the seed splits the keys

        def observed():
            configure(make_plan(trigger))
            fired = set()
            for key in keys:
                try:
                    if failpoint(SITE, key=key) is not None:
                        fired.add(key)
                except InjectedFault:
                    fired.add(key)
            return fired

        first = observed()
        # Same plan, same keys, shuffled order: the same faults fire.
        assert first == expected
        configure(make_plan(trigger))
        for key in reversed(keys):
            try:
                failpoint(SITE, key=key)
            except InjectedFault:
                pass
        assert {
            entry["key"] for entry in fired_faults()
        } == expected

    def test_keyed_trigger_fires_once_per_key(self):
        # The retry that follows a keyed fault must heal.
        configure(
            make_plan({"site": SITE, "action": "raise", "probability": 1.0})
        )
        with pytest.raises(InjectedFault):
            failpoint(SITE, key="abc")
        assert failpoint(SITE, key="abc") is None
        with pytest.raises(InjectedFault):
            failpoint(SITE, key="other")

    def test_limit_caps_total_fires(self):
        configure(
            make_plan(
                {
                    "site": SITE,
                    "action": "raise",
                    "probability": 1.0,
                    "limit": 2,
                }
            )
        )
        for key in ("a", "b"):
            with pytest.raises(InjectedFault):
                failpoint(SITE, key=key)
        assert failpoint(SITE, key="c") is None

    def test_worker_pattern_gates_firing(self):
        trigger = {
            "site": SITE,
            "action": "raise",
            "probability": 1.0,
            "worker": "chaos-*",
        }
        configure(make_plan(trigger), worker="steady-1")
        assert failpoint(SITE, key="x") is None
        set_worker("chaos-r0-w1")
        with pytest.raises(InjectedFault):
            failpoint(SITE, key="x")

    def test_sleep_returns_none(self):
        configure(
            make_plan(
                {"site": SITE, "action": "sleep", "nth": 1, "seconds": 0.0}
            )
        )
        assert failpoint(SITE) is None
        assert fired_faults()[0]["action"] == "sleep"

    def test_torn_write_fault_handle(self):
        configure(
            make_plan(
                {
                    "site": SITE,
                    "action": "torn_write",
                    "nth": 1,
                    "fraction": 0.25,
                }
            )
        )
        fault = failpoint(SITE, key="abc")
        assert fault is not None and fault.kind == "torn_write"
        payload = "x" * 100 + "\n"
        torn = fault.apply_text(payload)
        assert torn == payload[: int(len(payload) * 0.25)]
        assert fault.error().errno == errno.EIO

    def test_corrupt_fault_is_json_invalid(self):
        configure(
            make_plan({"site": SITE, "action": "corrupt", "nth": 1})
        )
        fault = failpoint(SITE, key="abc")
        line = json.dumps({"digest": "abc", "record": {"value": 1}}) + "\n"
        mangled = fault.apply_text(line)
        assert len(mangled) == len(line)
        assert "\x00" in mangled
        assert mangled.endswith("\n")
        with pytest.raises(json.JSONDecodeError):
            json.loads(mangled)

    def test_fired_log_is_appended_jsonl(self, tmp_path):
        log = tmp_path / "faults.jsonl"
        configure(
            make_plan({"site": SITE, "action": "raise", "probability": 1.0}),
            worker="w0",
            log_path=log,
        )
        with pytest.raises(InjectedFault):
            failpoint(SITE, key="abc")
        entries = [
            json.loads(line) for line in log.read_text().splitlines()
        ]
        assert entries[0]["site"] == SITE
        assert entries[0]["key"] == "abc"
        assert entries[0]["worker"] == "w0"

    def test_deconfigure_restores_noop(self):
        configure(
            make_plan({"site": SITE, "action": "raise", "probability": 1.0})
        )
        assert is_active() and active_plan() is not None
        deconfigure()
        assert failpoint(SITE, key="abc") is None

    def test_configure_from_env(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps(
                {
                    "seed": 3,
                    "triggers": [
                        {"site": SITE, "action": "raise", "nth": 1}
                    ],
                }
            )
        )
        assert configure_from_env({}) is None
        assert not is_active()
        runtime = configure_from_env(
            {
                "REPRO_FAULT_PLAN": str(path),
                "REPRO_FAULT_SEED": "42",
                "REPRO_FAULT_WORKER": "w7",
            }
        )
        assert runtime is not None
        assert active_plan().seed == 42
        assert runtime.worker == "w7"
