"""Unit tests for real-time constraints (Rtc)."""

import pytest

from repro.exceptions import ConstraintError
from repro.schedule.schedule import Schedule
from repro.timing.constraints import RealTimeConstraints, RtcViolation


def schedule_with(makespan: float) -> Schedule:
    schedule = Schedule(processors=["P1"], npf=0)
    schedule.place_operation("A", "P1", 0.0, makespan)
    return schedule


class TestSpecification:
    def test_trivial(self):
        assert RealTimeConstraints().is_trivial()
        assert not RealTimeConstraints(global_deadline=5.0).is_trivial()
        assert not RealTimeConstraints(operation_deadlines={"A": 1.0}).is_trivial()

    def test_non_positive_global_deadline_rejected(self):
        with pytest.raises(ConstraintError):
            RealTimeConstraints(global_deadline=0.0)

    def test_non_positive_operation_deadline_rejected(self):
        with pytest.raises(ConstraintError):
            RealTimeConstraints(operation_deadlines={"A": -1.0})


class TestGlobalDeadline:
    def test_satisfied(self):
        report = RealTimeConstraints(global_deadline=10.0).check(schedule_with(8.0))
        assert report.satisfied
        assert report.makespan == 8.0

    def test_violated(self):
        report = RealTimeConstraints(global_deadline=5.0).check(schedule_with(8.0))
        assert not report.satisfied
        assert report.violations[0].subject == "<schedule>"
        assert report.violations[0].lateness == pytest.approx(3.0)

    def test_no_deadline_always_satisfied(self):
        assert RealTimeConstraints().check(schedule_with(1e9)).satisfied

    def test_check_completion(self):
        rtc = RealTimeConstraints(global_deadline=10.0)
        assert rtc.check_completion(9.9)
        assert not rtc.check_completion(10.1)
        assert RealTimeConstraints().check_completion(1e12)


class TestOperationDeadlines:
    def make_schedule(self) -> Schedule:
        schedule = Schedule(processors=["P1", "P2"], npf=1)
        schedule.place_operation("A", "P1", 0.0, 2.0)
        schedule.place_operation("A", "P2", 0.0, 5.0)
        return schedule

    def test_checked_against_latest_replica(self):
        # A's replicas end at 2 and 5: the guarantee must hold for the
        # replica that survives the worst failure, so 5 is the reference.
        assert not RealTimeConstraints(
            operation_deadlines={"A": 4.0}
        ).check(self.make_schedule()).satisfied
        assert RealTimeConstraints(
            operation_deadlines={"A": 5.0}
        ).check(self.make_schedule()).satisfied

    def test_unknown_operation_rejected(self):
        with pytest.raises(ConstraintError, match="not scheduled"):
            RealTimeConstraints(operation_deadlines={"Z": 1.0}).check(
                self.make_schedule()
            )

    def test_violation_report_lists_operation(self):
        report = RealTimeConstraints(operation_deadlines={"A": 1.0}).check(
            self.make_schedule()
        )
        assert [v.subject for v in report.violations] == ["A"]


class TestReportRendering:
    def test_satisfied_string(self):
        report = RealTimeConstraints(global_deadline=10.0).check(schedule_with(8.0))
        assert "satisfied" in str(report)

    def test_violated_string_lists_all(self):
        report = RealTimeConstraints(global_deadline=5.0).check(schedule_with(8.0))
        text = str(report)
        assert "violated" in text
        assert "<schedule>" in text

    def test_violation_str(self):
        violation = RtcViolation("A", 5.0, 8.0)
        assert "late by 3" in str(violation)
