"""Tests for the §6.1 random workload generator."""

import random

import pytest

from repro.core.ftbar import schedule_ftbar
from repro.workloads.random_dag import (
    RandomWorkloadConfig,
    generate_algorithm,
    generate_layers,
    generate_problem,
)


class TestConfig:
    def test_mean_communication_from_ccr(self):
        config = RandomWorkloadConfig(operations=10, ccr=5.0, mean_execution=2.0)
        assert config.mean_communication == 10.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"operations": 0, "ccr": 1.0},
            {"operations": 10, "ccr": 0.0},
            {"operations": 10, "ccr": 1.0, "processors": 0},
            {"operations": 10, "ccr": 1.0, "mean_execution": 0.0},
            {"operations": 10, "ccr": 1.0, "max_predecessors": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RandomWorkloadConfig(**kwargs)


class TestLayers:
    def test_all_operations_distributed(self):
        layers = generate_layers(random.Random(0), 30)
        names = [name for layer in layers for name in layer]
        assert sorted(names) == sorted(f"T{i}" for i in range(30))

    def test_no_empty_layer(self):
        for seed in range(5):
            layers = generate_layers(random.Random(seed), 25)
            assert all(layer for layer in layers)

    def test_level_count_scales_with_sqrt(self):
        layers = generate_layers(random.Random(1), 100)
        assert 10 <= len(layers) <= 20


class TestAlgorithmGeneration:
    def test_acyclic_and_connected_forward(self):
        for seed in range(5):
            graph = generate_algorithm(random.Random(seed), 40)
            assert graph.is_acyclic()
            # Every non-first-layer operation has at least one predecessor:
            # only layer-0 operations are sources.
            levels = graph.levels()
            for op in graph.operation_names():
                if levels[op] > 0:
                    assert graph.predecessors(op)

    def test_max_predecessors_respected(self):
        graph = generate_algorithm(random.Random(3), 50, max_predecessors=2)
        assert all(
            len(graph.predecessors(op)) <= 2 for op in graph.operation_names()
        )

    def test_exact_operation_count(self):
        assert len(generate_algorithm(random.Random(0), 23)) == 23


class TestProblemGeneration:
    def test_deterministic_for_same_seed(self):
        config = RandomWorkloadConfig(operations=15, ccr=1.0, seed=9)
        first, second = generate_problem(config), generate_problem(config)
        assert first.algorithm.dependencies() == second.algorithm.dependencies()
        assert first.exec_times.entries() == second.exec_times.entries()
        assert first.comm_times.entries() == second.comm_times.entries()

    def test_different_seeds_differ(self):
        base = RandomWorkloadConfig(operations=15, ccr=1.0, seed=1)
        other = RandomWorkloadConfig(operations=15, ccr=1.0, seed=2)
        assert (
            generate_problem(base).exec_times.entries()
            != generate_problem(other).exec_times.entries()
        )

    def test_homogeneous_tables_by_default(self):
        problem = generate_problem(RandomWorkloadConfig(operations=10, ccr=1.0))
        for op in problem.algorithm.operation_names():
            durations = {
                problem.exec_times.time_of(op, p)
                for p in problem.architecture.processor_names()
            }
            assert len(durations) == 1

    def test_heterogeneous_tables_on_demand(self):
        problem = generate_problem(
            RandomWorkloadConfig(operations=10, ccr=1.0, heterogeneous=True, seed=4)
        )
        varied = 0
        for op in problem.algorithm.operation_names():
            durations = {
                problem.exec_times.time_of(op, p)
                for p in problem.architecture.processor_names()
            }
            varied += len(durations) > 1
        assert varied > 0

    def test_durations_within_uniform_bounds(self):
        config = RandomWorkloadConfig(
            operations=20, ccr=2.0, mean_execution=10.0, seed=5
        )
        problem = generate_problem(config)
        for (_, _), duration in problem.exec_times.entries().items():
            assert 5.0 <= duration <= 15.0
        for (_, _), duration in problem.comm_times.entries().items():
            assert 10.0 <= duration <= 30.0

    def test_generated_problem_validates_and_schedules(self):
        problem = generate_problem(
            RandomWorkloadConfig(operations=12, ccr=1.0, npf=1, seed=6)
        )
        problem.validate()
        result = schedule_ftbar(problem)
        assert result.makespan > 0

    def test_processor_count_honored(self):
        problem = generate_problem(
            RandomWorkloadConfig(operations=10, ccr=1.0, processors=6)
        )
        assert len(problem.architecture) == 6
