"""Unit tests for the schedule-pressure cost function."""

import math

import pytest

from repro.core.placement import PlacementPlanner
from repro.core.pressure import PressureCalculator
from repro.graphs.algorithm import from_dependencies
from repro.hardware.topologies import fully_connected
from repro.schedule.schedule import Schedule
from repro.timing.comm_times import CommunicationTimes
from repro.timing.exec_times import ExecutionTimes


def setup_chain(npf: int = 0):
    """A -> B -> C with exec 1.0 everywhere and comm 0.5 on all links."""
    algorithm = from_dependencies([("A", "B"), ("B", "C")])
    architecture = fully_connected(3)
    exec_times = ExecutionTimes.uniform(
        ["A", "B", "C"], architecture.processor_names(), 1.0
    )
    comm_times = CommunicationTimes.uniform(
        [("A", "B"), ("B", "C")], architecture.link_names(), 0.5
    )
    planner = PlacementPlanner(algorithm, architecture, exec_times, comm_times, npf)
    calculator = PressureCalculator(
        algorithm, architecture, exec_times, comm_times, npf, planner
    )
    schedule = Schedule(
        processors=architecture.processor_names(),
        links=architecture.link_names(),
        npf=npf,
    )
    return calculator, schedule


class TestSbar:
    def test_sink_sbar_is_average_execution(self):
        calculator, _ = setup_chain()
        assert calculator.sbar("C") == pytest.approx(1.0)

    def test_sbar_accumulates_execution_and_communication(self):
        calculator, _ = setup_chain()
        # B: exec(1) + comm(0.5) + sbar(C)=1 -> 2.5
        assert calculator.sbar("B") == pytest.approx(2.5)
        # A: exec(1) + comm(0.5) + sbar(B)=2.5 -> 4.0
        assert calculator.sbar("A") == pytest.approx(4.0)

    def test_sbar_takes_longest_branch(self):
        algorithm = from_dependencies([("A", "B"), ("A", "C")])
        architecture = fully_connected(2)
        exec_times = ExecutionTimes.from_rows(
            ("P1", "P2"),
            {"A": (1.0, 1.0), "B": (9.0, 9.0), "C": (2.0, 2.0)},
        )
        comm_times = CommunicationTimes.uniform(
            [("A", "B"), ("A", "C")], architecture.link_names(), 1.0
        )
        planner = PlacementPlanner(algorithm, architecture, exec_times, comm_times, 0)
        calculator = PressureCalculator(
            algorithm, architecture, exec_times, comm_times, 0, planner
        )
        assert calculator.sbar("A") == pytest.approx(1.0 + 1.0 + 9.0)

    def test_sbar_uses_average_over_allowed_processors(self):
        algorithm = from_dependencies([("A", "B")])
        architecture = fully_connected(2)
        exec_times = ExecutionTimes.from_rows(
            ("P1", "P2"), {"A": (2.0, 4.0), "B": (1.0, math.inf)}
        )
        comm_times = CommunicationTimes.uniform(
            [("A", "B")], architecture.link_names(), 1.0
        )
        planner = PlacementPlanner(algorithm, architecture, exec_times, comm_times, 0)
        calculator = PressureCalculator(
            algorithm, architecture, exec_times, comm_times, 0, planner
        )
        # avg exec of A over P1,P2 = 3.0; B is allowed only on P1 -> 1.0
        assert calculator.sbar("B") == pytest.approx(1.0)
        assert calculator.sbar("A") == pytest.approx(3.0 + 1.0 + 1.0)

    def test_average_communication_zero_without_links(self):
        algorithm = from_dependencies([("A", "B")])
        architecture = fully_connected(1)
        exec_times = ExecutionTimes.uniform(["A", "B"], ("P1",), 1.0)
        planner = PlacementPlanner(
            algorithm, architecture, exec_times, CommunicationTimes(), 0
        )
        calculator = PressureCalculator(
            algorithm, architecture, exec_times, CommunicationTimes(), 0, planner
        )
        assert calculator.average_communication(("A", "B")) == 0.0
        assert calculator.sbar("A") == pytest.approx(2.0)


class TestPressure:
    def test_source_pressure_equals_sbar(self):
        calculator, schedule = setup_chain()
        # S_worst of a source on an idle processor is 0.
        assert calculator.pressure("A", "P1", schedule) == pytest.approx(
            calculator.sbar("A")
        )

    def test_pressure_infinite_when_forbidden(self):
        algorithm = from_dependencies([("A", "B")])
        architecture = fully_connected(2)
        exec_times = ExecutionTimes.from_rows(
            ("P1", "P2"), {"A": (1.0, math.inf), "B": (1.0, 1.0)}
        )
        comm_times = CommunicationTimes.uniform(
            [("A", "B")], architecture.link_names(), 1.0
        )
        planner = PlacementPlanner(algorithm, architecture, exec_times, comm_times, 0)
        calculator = PressureCalculator(
            algorithm, architecture, exec_times, comm_times, 0, planner
        )
        schedule = Schedule(
            processors=("P1", "P2"), links=architecture.link_names(), npf=0
        )
        assert math.isinf(calculator.pressure("A", "P2", schedule))

    def test_pressure_prefers_local_processor(self):
        calculator, schedule = setup_chain()
        schedule.place_operation("A", "P1", 0.0, 1.0)
        local = calculator.pressure("B", "P1", schedule)
        remote = calculator.pressure("B", "P2", schedule)
        assert local < remote

    def test_evaluation_counter_increments(self):
        calculator, schedule = setup_chain()
        before = calculator.evaluations
        calculator.pressure("A", "P1", schedule)
        calculator.pressure("A", "P2", schedule)
        assert calculator.evaluations == before + 2

    def test_trial_evaluations_leave_schedule_unchanged(self):
        calculator, schedule = setup_chain()
        schedule.place_operation("A", "P1", 0.0, 1.0)
        calculator.pressure("B", "P2", schedule)
        calculator.pressure("B", "P3", schedule)
        assert schedule.comm_count() == 0

    def test_schedule_flexibility_definition(self):
        calculator, schedule = setup_chain()
        r_estimate = 10.0
        flexibility = calculator.schedule_flexibility("A", "P1", schedule, r_estimate)
        assert flexibility == pytest.approx(r_estimate - 0.0 - calculator.sbar("A"))

    def test_critical_path_estimate_covers_candidates(self):
        calculator, schedule = setup_chain()
        estimate = calculator.critical_path_estimate(["A"], schedule)
        assert estimate == pytest.approx(calculator.sbar("A"))


class TestCriticalPathEstimateRegression:
    """Pin ``R(n)`` on the paper example (it now reuses cached plans)."""

    def build(self, paper_problem):
        from repro.core.ftbar import FTBARScheduler

        scheduler = FTBARScheduler(paper_problem)
        schedule = Schedule(
            processors=paper_problem.architecture.processor_names(),
            links=paper_problem.architecture.link_names(),
            npf=paper_problem.npf,
        )
        return scheduler, schedule

    def test_initial_estimate_on_paper_example(self, paper_problem):
        # Seed-recorded value: R(0) with the single candidate 'I' on the
        # empty schedule is the best achievable S_worst + sbar = sbar(I).
        scheduler, schedule = self.build(paper_problem)
        estimate = scheduler._pressure.critical_path_estimate(["I"], schedule)
        assert estimate == pytest.approx(13.866666666666665)
        assert estimate == pytest.approx(scheduler._pressure.sbar("I"))

    def test_final_estimate_equals_makespan(self, paper_problem, paper_result):
        # With no candidates left, R(n) is the finished makespan: 15.05
        # on the paper example (seed-recorded).
        scheduler, _ = self.build(paper_problem)
        estimate = scheduler._pressure.critical_path_estimate(
            [], paper_result.schedule
        )
        assert estimate == pytest.approx(15.05)

    def test_estimate_identical_with_and_without_cache(self, paper_problem):
        # Attached (cache-serving) and detached calculators must agree.
        from repro.core.ftbar import schedule_ftbar

        scheduler, schedule = self.build(paper_problem)
        detached = scheduler._pressure.critical_path_estimate(["I"], schedule)
        scheduler._pressure.attach(schedule)
        attached = scheduler._pressure.critical_path_estimate(["I"], schedule)
        assert attached == detached
        # Second call is served entirely from the cache.
        evaluations = scheduler._pressure.evaluations
        again = scheduler._pressure.critical_path_estimate(["I"], schedule)
        assert again == detached
        assert scheduler._pressure.evaluations == evaluations
