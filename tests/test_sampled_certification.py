"""Adaptive sampled certification agrees with exhaustive truth.

The tentpole contract of the sampled certifier (``analysis/sampling.py``
behind ``fault_tolerance_certificate`` / ``schedule_reliability``):

* on every small instance the auto path is *bit-identical* to the
  legacy exhaustive certificate (levels, breaking subsets, verdict);
* forced sampling never contradicts exhaustive truth — same
  refuted-or-not verdict, and the exhaustive masked fraction /
  reliability lies inside every reported confidence interval;
* closed-form bounds are tight on the structured topologies
  (fc / ring / star): ``min_replicas = npf + 1`` for an FTBAR schedule,
  so level ``npf + 1`` of a targeted hypothesis is refuted without a
  single simulation;
* same seed ⇒ byte-identical certificates at any worker count (the RNG
  streams derive from the schedule content hash, the user seed and the
  stratum label — never from process or host state).
"""

from __future__ import annotations

import math
import random
import warnings

import pytest

from repro.analysis import sampling
from repro.analysis.reliability import (
    CertificationCapWarning,
    fault_tolerance_certificate,
    schedule_reliability,
)
from repro.analysis.sampling import (
    ConditionalSubsetSampler,
    analytic_fault_bounds,
    derive_rng,
    hoeffding_interval,
    poisson_binomial,
    wilson_interval,
)
from repro.core.ftbar import schedule_ftbar
from repro.exceptions import SimulationError
from repro.graphs.algorithm import from_dependencies
from repro.hardware.topologies import fully_connected, ring, single_bus, star
from repro.problem import ProblemSpec
from repro.simulation.batch import BatchScenarioEngine
from repro.timing.comm_times import CommunicationTimes
from repro.timing.exec_times import ExecutionTimes
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem


def _schedule(processors: int, npf: int = 1, seed: int = 2003,
              operations: int = 12):
    problem = generate_problem(
        RandomWorkloadConfig(
            operations=operations,
            ccr=1.0,
            processors=processors,
            npf=npf,
            seed=seed,
        )
    )
    result = schedule_ftbar(problem)
    return result.schedule, result.expanded_algorithm


def _wide_schedule(processors: int, npf: int = 1):
    """A tiny chain on a wide single bus — P far past the cap, cheaply."""
    algorithm = from_dependencies([("I", "A"), ("A", "O")])
    architecture = single_bus(processors)
    problem = ProblemSpec(
        algorithm=algorithm,
        architecture=architecture,
        exec_times=ExecutionTimes.uniform(
            algorithm.operation_names(), architecture.processor_names(), 2.0
        ),
        comm_times=CommunicationTimes.uniform(
            algorithm.dependencies(), architecture.link_names(), 1.0
        ),
        npf=npf,
        name=f"wide-{processors}",
    )
    result = schedule_ftbar(problem)
    return result.schedule, result.expanded_algorithm


def _levels(certificate):
    return [
        (level.failures, level.link_failures,
         level.masked_subsets, level.total_subsets)
        for level in certificate.levels
    ]


# ----------------------------------------------------------------------
# statistical primitives
# ----------------------------------------------------------------------

class TestIntervals:
    def test_wilson_contains_the_point_estimate(self):
        lo, hi = wilson_interval(90, 100, 0.95)
        assert lo < 0.9 < hi
        assert 0.0 <= lo < hi <= 1.0

    def test_wilson_boundary_counts_stay_nondegenerate(self):
        lo, hi = wilson_interval(100, 100, 0.99)
        assert hi == pytest.approx(1.0) and lo < 1.0
        lo, hi = wilson_interval(0, 100, 0.99)
        assert lo == pytest.approx(0.0) and hi > 0.0

    def test_wilson_no_trials_is_vacuous(self):
        assert wilson_interval(0, 0, 0.99) == (0.0, 1.0)

    def test_higher_confidence_widens(self):
        narrow = wilson_interval(50, 100, 0.90)
        wide = wilson_interval(50, 100, 0.999)
        assert wide[0] < narrow[0] and narrow[1] < wide[1]

    def test_hoeffding_shrinks_with_trials(self):
        small = hoeffding_interval(0.5, 10, 0.95, upper=1.0)
        large = hoeffding_interval(0.5, 1000, 0.95, upper=1.0)
        assert large[1] - large[0] < small[1] - small[0]

    def test_normal_quantile_matches_known_values(self):
        assert sampling.normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-5)
        assert sampling.normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)

    def test_poisson_binomial_sums_to_one_and_matches_binomial(self):
        mass = poisson_binomial([0.3] * 5)
        assert sum(mass) == pytest.approx(1.0)
        for k, m in enumerate(mass):
            assert m == pytest.approx(
                math.comb(5, k) * 0.3 ** k * 0.7 ** (5 - k)
            )

    def test_conditional_sampler_draws_exactly_k(self):
        sampler = ConditionalSubsetSampler([0.5, 1.0, 2.0, 0.25, 3.0])
        rng = random.Random(7)
        for k in (1, 2, 3):
            for _ in range(50):
                draw = sampler.draw(k, rng)
                assert len(draw) == k
                assert len(set(draw)) == k

    def test_conditional_sampler_matches_conditional_distribution(self):
        # With odds o_i, P(S | |S|=k) ∝ prod_{i in S} o_i: check the
        # empirical frequencies of all 2-subsets of 4 items.
        odds = [1.0, 2.0, 0.5, 1.5]
        sampler = ConditionalSubsetSampler(odds)
        rng = random.Random(11)
        counts: dict[tuple[int, ...], int] = {}
        trials = 20000
        for _ in range(trials):
            draw = sampler.draw(2, rng)
            counts[draw] = counts.get(draw, 0) + 1
        weights = {
            (i, j): odds[i] * odds[j]
            for i in range(4)
            for j in range(i + 1, 4)
        }
        total = sum(weights.values())
        for subset, weight in weights.items():
            expected = weight / total
            observed = counts.get(subset, 0) / trials
            assert observed == pytest.approx(expected, abs=0.02)

    def test_derive_rng_streams_are_stable_and_distinct(self):
        a = derive_rng("hash", 0, "level:1:0").random()
        b = derive_rng("hash", 0, "level:1:0").random()
        assert a == b
        assert derive_rng("hash", 0, "level:2:0").random() != a
        assert derive_rng("hash", 1, "level:1:0").random() != a
        assert derive_rng("other", 0, "level:1:0").random() != a


# ----------------------------------------------------------------------
# closed-form bounds
# ----------------------------------------------------------------------

class TestAnalyticBounds:
    @pytest.mark.parametrize("topology", [fully_connected, ring, star])
    @pytest.mark.parametrize("npf", [0, 1, 2])
    def test_min_replicas_is_npf_plus_one(self, topology, npf):
        processors = max(4, npf + 2)
        architecture = topology(processors)
        algorithm = from_dependencies([("I", "A"), ("A", "O")])
        problem = ProblemSpec(
            algorithm=algorithm,
            architecture=architecture,
            exec_times=ExecutionTimes.uniform(
                algorithm.operation_names(),
                architecture.processor_names(),
                2.0,
            ),
            comm_times=CommunicationTimes.uniform(
                algorithm.dependencies(), architecture.link_names(), 1.0
            ),
            npf=npf,
            name=f"bounds-{topology.__name__}-{npf}",
        )
        result = schedule_ftbar(problem)
        bounds = analytic_fault_bounds(result.schedule)
        # FTBAR places exactly npf + 1 replicas of every operation on
        # distinct processors — the bound is tight.
        assert bounds.min_replicas == npf + 1
        assert bounds.max_tolerable_processor_faults == npf
        assert len(bounds.processor_witness) == npf + 1
        assert bounds.witness_operation

    def test_witness_subset_actually_breaks_the_schedule(self):
        schedule, algorithm = _schedule(5, npf=1)
        bounds = analytic_fault_bounds(schedule)
        engine = BatchScenarioEngine(schedule, algorithm)
        assert not engine.crash_subset_masked(
            bounds.processor_witness, (0.0,)
        )

    def test_involvement_counts(self):
        schedule, _ = _wide_schedule(20)
        bounds = analytic_fault_bounds(schedule)
        assert bounds.total_processors == 20
        assert bounds.involved_processors <= 20
        assert bounds.involved_processors >= bounds.min_replicas


# ----------------------------------------------------------------------
# exhaustive vs adaptive agreement (the P <= 6 corpus)
# ----------------------------------------------------------------------

CORPUS = [
    (3, 1, 2003), (4, 1, 2003), (4, 2, 7), (5, 1, 7), (6, 1, 2003),
    (6, 2, 11),
]


class TestSmallInstanceAgreement:
    @pytest.mark.parametrize("processors,npf,seed", CORPUS)
    def test_auto_is_bit_identical_to_exact(self, processors, npf, seed):
        schedule, algorithm = _schedule(processors, npf=npf, seed=seed)
        engine = BatchScenarioEngine(schedule, algorithm)
        auto = fault_tolerance_certificate(schedule, algorithm, engine=engine)
        exact = fault_tolerance_certificate(
            schedule, algorithm, method="exact", engine=engine
        )
        assert _levels(auto) == _levels(exact)
        assert auto.breaking_subsets == exact.breaking_subsets
        assert auto.breaking_combined == exact.breaking_combined
        assert auto.certified == exact.certified
        assert auto.verdict == exact.verdict
        assert auto.method == "exact"
        assert all(level.method == "exact" for level in auto.levels)

    @pytest.mark.parametrize("processors,npf,seed", CORPUS)
    def test_sampled_verdict_agrees_with_exhaustive(
        self, processors, npf, seed
    ):
        schedule, algorithm = _schedule(processors, npf=npf, seed=seed)
        engine = BatchScenarioEngine(schedule, algorithm)
        exact = fault_tolerance_certificate(
            schedule, algorithm, method="exact", engine=engine
        )
        sampled = fault_tolerance_certificate(
            schedule, algorithm, method="sampled", engine=engine, seed=1
        )
        assert (sampled.verdict == "refuted") == (exact.verdict == "refuted")
        # Every exhaustive masked fraction lies inside the level's ci.
        for level in sampled.levels:
            if level.ci is None:
                continue
            truth = exact.level(
                level.failures, level.link_failures
            ).masked_fraction
            assert level.ci[0] - 1e-12 <= truth <= level.ci[1] + 1e-12

    @pytest.mark.parametrize("processors,npf,seed", CORPUS)
    def test_exhaustive_reliability_inside_sampled_ci(
        self, processors, npf, seed
    ):
        schedule, algorithm = _schedule(processors, npf=npf, seed=seed)
        engine = BatchScenarioEngine(schedule, algorithm)
        probabilities = {p: 0.05 for p in schedule.processor_names()}
        exact = schedule_reliability(
            schedule, algorithm, probabilities, engine=engine
        )
        sampled = schedule_reliability(
            schedule, algorithm, probabilities, method="sampled",
            engine=engine, seed=1,
        )
        assert exact.method == "exact" and sampled.method == "sampled"
        lo, hi = sampled.ci
        assert lo - 1e-12 <= exact.reliability <= hi + 1e-12
        assert sampled.exhaustive_subsets == 2 ** processors
        assert (
            sampled.guaranteed_lower_bound
            == pytest.approx(exact.guaranteed_lower_bound)
        )


# ----------------------------------------------------------------------
# past the cap: no warning, quantified output
# ----------------------------------------------------------------------

class TestBeyondTheCap:
    def test_auto_emits_no_cap_warning(self):
        schedule, algorithm = _wide_schedule(16)
        with warnings.catch_warnings():
            warnings.simplefilter("error", CertificationCapWarning)
            certificate = fault_tolerance_certificate(schedule, algorithm)
        assert certificate.verdict in ("certified", "refuted", "estimated")

    def test_projection_matches_capless_truth(self):
        # P = 16 but only a handful involved: the projected counts must
        # equal what uncapped exhaustive enumeration would find.
        schedule, algorithm = _wide_schedule(16)
        certificate = fault_tolerance_certificate(schedule, algorithm)
        engine = BatchScenarioEngine(schedule, algorithm)
        import itertools
        processors = schedule.processor_names()
        for level in certificate.levels:
            if level.method not in ("exact", "projected"):
                continue
            if math.comb(len(processors), level.failures) > 3000:
                continue
            truth = sum(
                1
                for subset in itertools.combinations(
                    processors, level.failures
                )
                if engine.crash_subset_masked(subset, (0.0,))
            )
            assert level.masked_subsets == truth
            assert level.total_subsets == math.comb(
                len(processors), level.failures
            )

    def test_big_levels_resolved_without_enumeration(self):
        schedule, algorithm = _wide_schedule(40)
        certificate = fault_tolerance_certificate(
            schedule, algorithm, max_failures=3
        )
        populations = {
            level.failures: level.population or level.total_subsets
            for level in certificate.levels
        }
        assert populations[3] == math.comb(40, 3)
        # Every level answered: projected (tiny involved core), bounds
        # (past min_replicas) or sampled — never silently truncated.
        assert all(
            level.method in ("exact", "projected", "bounds", "sampled")
            for level in certificate.levels
        )
        assert certificate.verdict in ("certified", "refuted", "estimated")

    def test_bounds_refute_past_min_replicas_without_simulation(self):
        schedule, algorithm = _wide_schedule(40, npf=1)
        engine = BatchScenarioEngine(schedule, algorithm)
        certificate = fault_tolerance_certificate(
            schedule, algorithm, max_failures=3, engine=engine
        )
        level3 = certificate.level(3)
        if level3.method == "bounds":
            assert level3.refuted
            assert not level3.fully_masked

    def test_sampled_reliability_auto_kicks_in_past_the_cap(self):
        schedule, algorithm = _wide_schedule(16)
        probabilities = {p: 0.01 for p in schedule.processor_names()}
        report = schedule_reliability(schedule, algorithm, probabilities)
        assert report.method == "sampled"
        assert report.ci is not None
        assert report.exhaustive_subsets == 2 ** 16
        lo, hi = report.ci
        assert lo <= report.reliability <= hi
        assert report.guaranteed_lower_bound <= hi + 1e-12

    def test_sampled_reliability_requires_the_batch_engine(self):
        schedule, algorithm = _wide_schedule(16)
        probabilities = {p: 0.01 for p in schedule.processor_names()}
        with pytest.raises(SimulationError, match="batch engine"):
            schedule_reliability(
                schedule, algorithm, probabilities,
                method="sampled", batched=False,
            )

    def test_unknown_method_rejected(self):
        schedule, algorithm = _schedule(4)
        with pytest.raises(SimulationError, match="unknown certification"):
            fault_tolerance_certificate(schedule, algorithm, method="bogus")
        with pytest.raises(SimulationError, match="unknown reliability"):
            schedule_reliability(
                schedule, algorithm,
                {p: 0.01 for p in schedule.processor_names()},
                method="bogus",
            )


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------

class TestDeterminism:
    def test_same_seed_same_certificate(self):
        schedule, algorithm = _schedule(6, npf=1)
        runs = [
            fault_tolerance_certificate(
                schedule, algorithm, method="sampled", seed=5
            )
            for _ in range(2)
        ]
        assert _levels(runs[0]) == _levels(runs[1])
        assert [l.ci for l in runs[0].levels] == [l.ci for l in runs[1].levels]
        assert runs[0].breaking_subsets == runs[1].breaking_subsets
        assert runs[0].samples == runs[1].samples
        assert runs[0].to_dict() == runs[1].to_dict()

    def test_different_seed_different_draws(self):
        schedule, algorithm = _schedule(6, npf=1)
        a = schedule_reliability(
            schedule, algorithm,
            {p: 0.05 for p in schedule.processor_names()},
            method="sampled", seed=0, budget=256,
        )
        b = schedule_reliability(
            schedule, algorithm,
            {p: 0.05 for p in schedule.processor_names()},
            method="sampled", seed=1, budget=256,
        )
        # Both bracket the truth; the draws (and hence the point
        # estimates) are independent replications.
        assert a.ci is not None and b.ci is not None

    def test_seed_survives_sweep_worker_count(self):
        """Same seed ⇒ identical certificate however the schedule is built.

        The RNG streams derive from the schedule *content hash*, so two
        bit-identical schedules produced with different kernel worker
        counts sample identically.
        """
        from repro.core.options import SchedulerOptions

        problem = generate_problem(
            RandomWorkloadConfig(
                operations=12, ccr=1.0, processors=6, npf=1, seed=2003
            )
        )
        certificates = []
        for workers in (1, 2):
            result = schedule_ftbar(
                problem, SchedulerOptions(sweep_workers=workers)
            )
            certificates.append(
                fault_tolerance_certificate(
                    result.schedule,
                    result.expanded_algorithm,
                    method="sampled",
                    seed=9,
                )
            )
        assert certificates[0].to_dict() == certificates[1].to_dict()

    def test_sampled_certificate_reports_the_contract_fields(self):
        schedule, algorithm = _schedule(5, npf=1)
        certificate = fault_tolerance_certificate(
            schedule, algorithm, method="sampled", seed=2, confidence=0.95
        )
        document = certificate.to_dict()
        assert document["method"] == "sampled"
        assert document["confidence"] == 0.95
        assert document["seed"] == 2
        assert document["samples"] == certificate.samples
        assert "ci" in document
        assert any("ci" in level for level in document["levels"])
