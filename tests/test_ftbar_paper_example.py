"""End-to-end checks of FTBAR on the paper's worked example (E1).

The paper's own run gives a fault-tolerant length of 15.05 (< Rtc = 16)
and degraded lengths 15.35 / 15.05 / 12.6 for crashes of P1 / P2 / P3.
Our implementation reproduces 15.05 exactly; the degraded lengths match
for P1 and P2 and stay under Rtc for P3 (tie-breaking differences place
some replicas differently — see EXPERIMENTS.md).
"""

import pytest

from repro.analysis.metrics import degraded_lengths
from repro.baselines.list_scheduler import (
    schedule_basic,
    schedule_non_fault_tolerant,
)
from repro.schedule.validation import validate_schedule
from repro.simulation.executor import simulate
from repro.simulation.failures import FailureScenario
from repro.workloads.paper_example import PAPER_RTC


class TestStaticSchedule:
    def test_ft_length_matches_paper(self, paper_result):
        assert paper_result.makespan == pytest.approx(15.05)

    def test_rtc_satisfied(self, paper_result):
        assert paper_result.rtc_satisfied
        assert paper_result.makespan < PAPER_RTC

    def test_every_operation_replicated_twice(self, paper_result):
        for operation in "IABCDEFGO":
            replicas = paper_result.schedule.replicas_of(operation)
            assert len(replicas) >= 2, operation
            assert len({r.processor for r in replicas}) == len(replicas)

    def test_distribution_constraints_respected(self, paper_result):
        # I cannot run on P3 and O cannot run on P2 (Table 1's infinities).
        assert paper_result.schedule.replica_on("I", "P3") is None
        assert paper_result.schedule.replica_on("O", "P2") is None

    def test_schedule_validates(self, paper_problem, paper_result):
        report = validate_schedule(
            paper_result.schedule,
            paper_result.expanded_algorithm,
            paper_problem.architecture,
            paper_problem.exec_times,
            paper_problem.comm_times,
            require_direct_links=True,
        )
        assert report.ok, str(report)

    def test_example_uses_lip_duplication(self, paper_result):
        # Figure 6's step: A gets a third, duplicated replica.
        assert paper_result.schedule.duplicated_count() >= 1

    def test_statistics_consistent(self, paper_result):
        assert paper_result.stats.steps == 9  # nine operations
        assert paper_result.stats.duplication.kept >= 1


class TestBaselines:
    def test_basic_heuristic_close_to_paper(self, paper_problem):
        # Paper: 10.7 with SynDEx's heuristic.  Tie-breaking differences
        # land us within ten percent.
        basic = schedule_basic(paper_problem)
        assert basic.makespan == pytest.approx(10.7, rel=0.10)

    def test_non_ft_is_shorter_than_ft(self, paper_problem, paper_result):
        non_ft = schedule_non_fault_tolerant(paper_problem)
        assert non_ft.makespan < paper_result.makespan

    def test_overhead_close_to_paper(self, paper_problem, paper_result):
        basic = schedule_basic(paper_problem)
        overhead = paper_result.makespan - basic.makespan
        assert overhead == pytest.approx(4.35, abs=1.0)


class TestFailureBehaviour:
    def test_every_single_crash_is_masked(self, paper_result):
        algorithm = paper_result.expanded_algorithm
        for processor in ("P1", "P2", "P3"):
            trace = simulate(
                paper_result.schedule, algorithm, FailureScenario.crash(processor)
            )
            assert trace.outputs_completion(algorithm) is not None, processor

    def test_degraded_lengths_match_paper_for_p1_p2(self, paper_result):
        lengths = degraded_lengths(
            paper_result.schedule, paper_result.expanded_algorithm
        )
        assert lengths["P1"] == pytest.approx(15.35)
        assert lengths["P2"] == pytest.approx(15.05)

    def test_all_degraded_lengths_satisfy_rtc(self, paper_result):
        lengths = degraded_lengths(
            paper_result.schedule, paper_result.expanded_algorithm
        )
        for processor, length in lengths.items():
            assert length < PAPER_RTC, (processor, length)

    def test_nominal_simulation_reproduces_static_times(self, paper_result):
        trace = simulate(paper_result.schedule, paper_result.expanded_algorithm)
        assert trace.makespan() == pytest.approx(paper_result.makespan)
        for event in paper_result.schedule.all_operations():
            outcome = trace.operation_outcome(event.operation, event.replica)
            assert outcome.start == pytest.approx(event.start)
            assert outcome.end == pytest.approx(event.end)

    def test_two_crashes_exceed_hypothesis(self, paper_result):
        # Npf = 1: two simultaneous crashes may starve operations.  The
        # simulator must degrade gracefully, not crash.
        algorithm = paper_result.expanded_algorithm
        trace = simulate(
            paper_result.schedule,
            algorithm,
            FailureScenario.crashes(["P1", "P2"]),
        )
        assert trace.outputs_completion(algorithm) is None
