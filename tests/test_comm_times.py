"""Unit tests for the communication-time table."""

import math

import pytest

from repro.exceptions import TimingError
from repro.timing.comm_times import CommunicationTimes


class TestConstruction:
    def test_set_and_get(self):
        table = CommunicationTimes()
        table.set(("I", "A"), "L1.2", 1.75)
        assert table.time_of(("I", "A"), "L1.2") == 1.75

    def test_constructor_entries(self):
        table = CommunicationTimes({(("A", "B"), "L"): 0.5})
        assert table.time_of(("A", "B"), "L") == 0.5

    def test_zero_duration_rejected(self):
        with pytest.raises(TimingError, match="positive"):
            CommunicationTimes().set(("A", "B"), "L", 0.0)

    def test_infinite_duration_rejected(self):
        with pytest.raises(TimingError, match="positive finite"):
            CommunicationTimes().set(("A", "B"), "L", math.inf)

    def test_edge_direction_matters(self):
        table = CommunicationTimes()
        table.set(("A", "B"), "L", 1.0)
        with pytest.raises(TimingError):
            table.time_of(("B", "A"), "L")


class TestQueries:
    def make(self) -> CommunicationTimes:
        return CommunicationTimes(
            {
                (("A", "B"), "L1"): 1.0,
                (("A", "B"), "L2"): 3.0,
                (("B", "C"), "L1"): 2.0,
                (("B", "C"), "L2"): 2.0,
            }
        )

    def test_missing_entry_raises(self):
        with pytest.raises(TimingError, match="no communication time"):
            self.make().time_of(("Z", "Q"), "L1")

    def test_has_entry(self):
        table = self.make()
        assert table.has_entry(("A", "B"), "L1")
        assert not table.has_entry(("A", "B"), "L9")

    def test_average(self):
        assert self.make().average(("A", "B"), ["L1", "L2"]) == pytest.approx(2.0)

    def test_average_without_links(self):
        with pytest.raises(TimingError, match="no links"):
            self.make().average(("A", "B"), [])

    def test_edges_sorted(self):
        assert self.make().edges() == (("A", "B"), ("B", "C"))

    def test_copy_independent(self):
        table = self.make()
        clone = table.copy()
        clone.set(("A", "B"), "L1", 9.0)
        assert table.time_of(("A", "B"), "L1") == 1.0

    def test_len(self):
        assert len(self.make()) == 4


class TestConstructors:
    def test_uniform(self):
        table = CommunicationTimes.uniform([("A", "B")], ["L1", "L2"], 0.5)
        assert table.time_of(("A", "B"), "L2") == 0.5

    def test_from_rows(self):
        table = CommunicationTimes.from_rows(
            ("L1", "L2"), {("A", "B"): (1.0, 2.0)}
        )
        assert table.time_of(("A", "B"), "L2") == 2.0

    def test_from_rows_length_mismatch(self):
        with pytest.raises(TimingError, match="expected 2"):
            CommunicationTimes.from_rows(("L1", "L2"), {("A", "B"): (1.0,)})

    def test_from_bandwidth(self):
        table = CommunicationTimes.from_bandwidth(
            {("A", "B"): 10.0},
            bandwidths={"L1": 5.0, "L2": 10.0},
            latencies={"L1": 1.0},
        )
        assert table.time_of(("A", "B"), "L1") == pytest.approx(3.0)
        assert table.time_of(("A", "B"), "L2") == pytest.approx(1.0)

    def test_from_bandwidth_rejects_bad_inputs(self):
        with pytest.raises(TimingError, match="data size"):
            CommunicationTimes.from_bandwidth({("A", "B"): 0.0}, {"L": 1.0})
        with pytest.raises(TimingError, match="bandwidth"):
            CommunicationTimes.from_bandwidth({("A", "B"): 1.0}, {"L": 0.0})


class TestValidation:
    def test_complete_table_passes(self):
        table = CommunicationTimes.uniform([("A", "B")], ["L1"], 1.0)
        table.validate_against([("A", "B")], ["L1"])

    def test_missing_pair_fails(self):
        table = CommunicationTimes.uniform([("A", "B")], ["L1"], 1.0)
        with pytest.raises(TimingError, match="missing communication time"):
            table.validate_against([("A", "B")], ["L1", "L2"])
