"""Unit and behavioural tests for the FTBAR scheduler."""

import pytest

from repro.core.ftbar import FTBARScheduler, schedule_ftbar
from repro.core.options import SchedulerOptions
from repro.exceptions import InfeasibleReplicationError
from repro.graphs.algorithm import AlgorithmGraph, from_dependencies
from repro.graphs.builder import (
    diamond,
    fork_join,
    independent_tasks,
    linear_chain,
)
from repro.graphs.operations import OperationKind
from repro.schedule.validation import validate_schedule
from repro.timing.constraints import RealTimeConstraints

from tests.util import uniform_problem


def assert_valid(problem, result, require_replication: bool = True) -> None:
    report = validate_schedule(
        result.schedule,
        result.expanded_algorithm,
        problem.architecture,
        problem.exec_times,
        problem.comm_times,
        require_replication=require_replication,
    )
    assert report.ok, str(report)


class TestBasicBehaviour:
    def test_npf0_schedules_each_operation_once(self):
        problem = uniform_problem(diamond(), processors=2, npf=0)
        result = schedule_ftbar(problem)
        for operation in problem.algorithm.operation_names():
            assert len(result.schedule.replicas_of(operation)) >= 1
        assert_valid(problem, result)

    def test_npf1_replicates_every_operation_twice(self):
        problem = uniform_problem(diamond(), processors=3, npf=1)
        result = schedule_ftbar(problem)
        for operation in problem.algorithm.operation_names():
            replicas = result.schedule.replicas_of(operation)
            assert len(replicas) >= 2
            assert len({r.processor for r in replicas}) == len(replicas)
        assert_valid(problem, result)

    def test_npf2_needs_three_replicas(self):
        problem = uniform_problem(linear_chain(3), processors=4, npf=2)
        result = schedule_ftbar(problem)
        for operation in problem.algorithm.operation_names():
            assert len(result.schedule.replicas_of(operation)) >= 3
        assert_valid(problem, result)

    def test_single_operation_graph(self):
        graph = AlgorithmGraph("one")
        graph.add_operation("A")
        problem = uniform_problem(graph, processors=2, npf=1)
        result = schedule_ftbar(problem)
        assert result.makespan == pytest.approx(1.0)

    def test_single_processor_npf0(self):
        problem = uniform_problem(linear_chain(4), processors=1, npf=0)
        result = schedule_ftbar(problem)
        # Serialized on one processor: makespan is the sum of exec times.
        assert result.makespan == pytest.approx(4.0)

    def test_independent_tasks_spread_over_processors(self):
        problem = uniform_problem(independent_tasks(4), processors=4, npf=0)
        result = schedule_ftbar(problem)
        used = {
            r.processor
            for op in problem.algorithm.operation_names()
            for r in result.schedule.replicas_of(op)
        }
        assert len(used) == 4
        assert result.makespan == pytest.approx(1.0)

    def test_makespan_bounded_by_serial_execution(self):
        problem = uniform_problem(fork_join(4), processors=3, npf=1)
        result = schedule_ftbar(problem)
        serial_everything = 6 * 2 * 1.0 + 8 * 2 * 0.5  # all replicas + comms
        assert 0 < result.makespan <= serial_everything

    def test_deterministic_across_runs(self):
        problem = uniform_problem(fork_join(3), processors=3, npf=1)
        first = schedule_ftbar(problem)
        second = schedule_ftbar(problem)
        assert first.makespan == second.makespan
        first_events = [
            (e.operation, e.replica, e.processor, e.start)
            for e in first.schedule.all_operations()
        ]
        second_events = [
            (e.operation, e.replica, e.processor, e.start)
            for e in second.schedule.all_operations()
        ]
        assert first_events == second_events


class TestFeasibility:
    def test_not_enough_processors_rejected(self):
        problem = uniform_problem(diamond(), processors=2, npf=2)
        with pytest.raises(Exception):
            schedule_ftbar(problem)

    def test_distribution_constraints_can_make_replication_infeasible(self):
        problem = uniform_problem(linear_chain(2), processors=3, npf=1)
        problem.exec_times.forbid("T0", "P1")
        problem.exec_times.forbid("T0", "P2")
        with pytest.raises(InfeasibleReplicationError, match="T0"):
            schedule_ftbar(problem)

    def test_distribution_constraints_respected(self):
        problem = uniform_problem(diamond(), processors=3, npf=1)
        problem.exec_times.forbid("B", "P1")
        result = schedule_ftbar(problem)
        assert result.schedule.replica_on("B", "P1") is None
        assert_valid(problem, result)


class TestRtcReporting:
    def test_satisfied_deadline(self):
        problem = uniform_problem(
            linear_chain(2),
            processors=3,
            npf=1,
            rtc=RealTimeConstraints(global_deadline=100.0),
        )
        assert schedule_ftbar(problem).rtc_satisfied

    def test_missed_deadline_still_returns_schedule(self):
        problem = uniform_problem(
            linear_chain(5),
            processors=3,
            npf=1,
            rtc=RealTimeConstraints(global_deadline=0.5),
        )
        result = schedule_ftbar(problem)
        assert not result.rtc_satisfied
        assert result.makespan > 0.5
        assert result.rtc_report.violations

    def test_trivial_rtc_always_satisfied(self):
        problem = uniform_problem(linear_chain(2), processors=2, npf=1)
        assert schedule_ftbar(problem).rtc_satisfied


class TestOptions:
    def test_duplication_off_means_no_duplicated_replicas(self):
        problem = uniform_problem(linear_chain(4), processors=3, npf=1,
                                  comm_time=5.0)
        result = schedule_ftbar(problem, SchedulerOptions(duplication=False))
        assert result.schedule.duplicated_count() == 0
        assert_valid(problem, result)

    def test_duplication_never_hurts_makespan_here(self):
        problem = uniform_problem(linear_chain(4), processors=3, npf=1,
                                  comm_time=5.0)
        with_dup = schedule_ftbar(problem, SchedulerOptions(duplication=True))
        without = schedule_ftbar(problem, SchedulerOptions(duplication=False))
        assert with_dup.makespan <= without.makespan

    def test_link_insertion_valid(self):
        problem = uniform_problem(fork_join(4), processors=3, npf=1)
        result = schedule_ftbar(problem, SchedulerOptions(link_insertion=True))
        assert_valid(problem, result)

    def test_stats_populated(self):
        problem = uniform_problem(diamond(), processors=3, npf=1)
        stats = schedule_ftbar(problem).stats
        assert stats.steps == 4
        assert stats.pressure_evaluations > 0
        assert stats.wall_time_s >= 0.0

    def test_processor_aware_pressure_valid(self):
        problem = uniform_problem(fork_join(4), processors=3, npf=1)
        result = schedule_ftbar(
            problem, SchedulerOptions(processor_aware_pressure=True)
        )
        assert_valid(problem, result)

    def test_processor_aware_pressure_avoids_slow_processors(self):
        # B runs 5x slower on P1/P2 than on P3; the aware pressure must
        # not choose a slow host when a fast one starts barely later.
        from repro.graphs.algorithm import from_dependencies
        from repro.timing.exec_times import ExecutionTimes

        problem = uniform_problem(from_dependencies([("A", "B")]),
                                  processors=3, npf=0, comm_time=0.5)
        problem.exec_times = ExecutionTimes.from_rows(
            ("P1", "P2", "P3"),
            {"A": (1.0, 1.0, 1.0), "B": (5.0, 5.0, 1.0)},
        )
        aware = schedule_ftbar(
            problem, SchedulerOptions(processor_aware_pressure=True)
        )
        assert aware.schedule.replica_on("B", "P3") is not None

    def test_paper_pressure_reproduces_paper_number(self, paper_problem):
        # The default (paper) pressure lands exactly on 15.05; the
        # processor-aware variant improves on it.
        paper = schedule_ftbar(paper_problem)
        aware = schedule_ftbar(
            paper_problem, SchedulerOptions(processor_aware_pressure=True)
        )
        assert paper.makespan == pytest.approx(15.05)
        assert aware.makespan < paper.makespan


class TestMemoryOperations:
    def register_problem(self, npf: int = 1):
        graph = AlgorithmGraph("register-loop")
        graph.add_operation("M", OperationKind.MEMORY)
        graph.add_operation("A")
        graph.add_operation("B")
        graph.add_dependency("M", "A")
        graph.add_dependency("A", "B")
        graph.add_dependency("B", "M")
        return uniform_problem(graph, processors=3, npf=npf)

    def test_memory_expanded_into_pinned_halves(self):
        result = schedule_ftbar(self.register_problem())
        assert "M#read" in result.expanded_algorithm.operation_names()
        assert result.memory_pairs == {"M": ("M#read", "M#write")}

    def test_read_and_write_halves_co_located(self):
        result = schedule_ftbar(self.register_problem())
        read_procs = {r.processor for r in result.schedule.replicas_of("M#read")}
        write_procs = {r.processor for r in result.schedule.replicas_of("M#write")}
        assert write_procs <= read_procs

    def test_memory_schedule_is_valid(self):
        problem = self.register_problem()
        result = schedule_ftbar(problem)
        report = validate_schedule(
            result.schedule,
            result.expanded_algorithm,
            problem.architecture,
            # The scheduler derived half-op timings internally; rebuild
            # them the same way for validation.
            _expanded_exec(problem),
            _expanded_comm(problem),
        )
        assert report.ok, str(report)

    def test_memory_deadline_maps_to_write_half(self):
        problem = self.register_problem()
        problem.rtc = RealTimeConstraints(operation_deadlines={"M": 50.0})
        result = schedule_ftbar(problem)
        assert result.rtc_satisfied


def _expanded_exec(problem):
    from repro.core.ftbar import _expand_timing

    pairs = {"M": ("M#read", "M#write")}
    return _expand_timing(problem, pairs)[0]


def _expanded_comm(problem):
    from repro.core.ftbar import _expand_timing

    pairs = {"M": ("M#read", "M#write")}
    return _expand_timing(problem, pairs)[1]
