"""Unit tests for the ProblemSpec bundle."""

import pytest

from repro.exceptions import SchedulingError, TimingError
from repro.graphs.builder import linear_chain
from repro.problem import ProblemSpec
from repro.timing.comm_times import CommunicationTimes
from repro.timing.exec_times import ExecutionTimes
from repro.hardware.topologies import fully_connected

from tests.util import uniform_problem


class TestProblemSpec:
    def test_replication_factor(self):
        problem = uniform_problem(linear_chain(2), npf=2, processors=3)
        assert problem.replication_factor == 3

    def test_negative_npf_rejected(self):
        with pytest.raises(SchedulingError, match="npf"):
            uniform_problem(linear_chain(2), npf=-1)

    def test_validate_passes_for_complete_problem(self):
        uniform_problem(linear_chain(3), processors=2).validate()

    def test_validate_needs_enough_processors(self):
        problem = uniform_problem(linear_chain(2), processors=2, npf=2)
        with pytest.raises(SchedulingError, match="3 replicas"):
            problem.validate()

    def test_validate_catches_missing_exec_times(self):
        problem = uniform_problem(linear_chain(2), processors=2)
        problem.exec_times = ExecutionTimes({("T0", "P1"): 1.0})
        with pytest.raises(TimingError):
            problem.validate()

    def test_validate_catches_missing_comm_times(self):
        problem = uniform_problem(linear_chain(2), processors=2)
        problem.comm_times = CommunicationTimes()
        with pytest.raises(TimingError):
            problem.validate()

    def test_multi_processor_without_links_rejected(self):
        arc = fully_connected(1)
        arc.add_processor("P2")  # second processor, no link
        problem = uniform_problem(linear_chain(2), processors=2)
        problem.architecture = arc
        with pytest.raises(Exception):
            problem.validate()

    def test_single_processor_without_links_ok(self):
        problem = uniform_problem(linear_chain(3), processors=1)
        problem.validate()

    def test_repr(self):
        problem = uniform_problem(linear_chain(2), processors=2, npf=1)
        assert "npf=1" in repr(problem)
