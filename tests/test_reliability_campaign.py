"""Reliability certification through the campaign subsystem and CLI.

The ``reliability`` measure turns campaign grids into heatmap sweeps
(npf axis x failure-probability columns), every job certified by the
batched scenario engine; ``repro certify`` is the one-schedule front
end with a built-in cross-engine comparison.
"""

import json

import pytest

from repro.campaign.jobs import execute_job, expand_jobs
from repro.campaign.runner import reliability_heatmap, run_campaign
from repro.campaign.spec import (
    CampaignSpec,
    ReliabilitySpec,
    WorkloadSpec,
    campaign_from_dict,
    campaign_to_dict,
)
from repro.campaign.store import ResultStore
from repro.cli import main
from repro.exceptions import SerializationError


def heatmap_spec(npfs=(0, 1), probabilities=(0.01, 0.1)) -> CampaignSpec:
    return CampaignSpec(
        name="reliability-test",
        workloads=(WorkloadSpec(family="random", size=8),),
        npfs=tuple(npfs),
        seeds=(0, 1),
        measures=("ftbar", "reliability"),
        reliability=ReliabilitySpec(probabilities=tuple(probabilities)),
    )


class TestReliabilitySpec:
    def test_roundtrip_through_json_document(self):
        spec = heatmap_spec()
        rebuilt = campaign_from_dict(campaign_to_dict(spec))
        assert rebuilt == spec
        assert rebuilt.reliability.probabilities == (0.01, 0.1)

    def test_measure_defaults_the_spec(self):
        spec = CampaignSpec(
            name="defaulted",
            workloads=(WorkloadSpec(family="random", size=6),),
            measures=("ftbar", "reliability"),
        )
        assert spec.reliability == ReliabilitySpec()

    def test_no_measure_keeps_reliability_none(self):
        spec = CampaignSpec(
            name="plain",
            workloads=(WorkloadSpec(family="random", size=6),),
        )
        assert spec.reliability is None
        assert campaign_to_dict(spec)["reliability"] is None

    def test_invalid_probability_rejected(self):
        with pytest.raises(SerializationError, match="must be in"):
            ReliabilitySpec(probabilities=(1.5,))

    def test_invalid_crash_time_policy_rejected(self):
        with pytest.raises(SerializationError, match="crash-time"):
            ReliabilitySpec(crash_times="sometimes")

    def test_invalid_detection_rejected(self):
        with pytest.raises(SerializationError, match="detection"):
            ReliabilitySpec(detection="psychic")

    def test_non_dict_reliability_document_rejected(self):
        document = campaign_to_dict(heatmap_spec())
        document["reliability"] = "yes"
        with pytest.raises(SerializationError, match="invalid campaign"):
            campaign_from_dict(document)

    def test_reliability_config_changes_job_digest(self):
        plain = heatmap_spec(probabilities=(0.01,))
        swept = heatmap_spec(probabilities=(0.01, 0.2))
        digests = lambda spec: [job.digest for job in expand_jobs(spec)]
        assert digests(plain) != digests(swept)


class TestReliabilityJobs:
    def test_record_shape_and_determinism(self):
        spec = heatmap_spec(npfs=(1,), probabilities=(0.0, 0.05))
        job = expand_jobs(spec)[0]
        first = execute_job(job)["record"]
        second = execute_job(job)["record"]
        assert first == second
        block = first["reliability"]
        assert block["certified"] is True
        assert [level["failures"] for level in block["levels"]] == [0, 1, 2]
        assert [point["probability"] for point in block["sweep"]] == [0.0, 0.05]
        # q=0 means perfect processors: fully reliable, infinite MTTF
        # stored as None so the record stays strict JSON.
        assert first["reliability"]["sweep"][0]["reliability"] == 1.0
        assert first["reliability"]["sweep"][0]["mttf_iterations"] is None
        assert block["scenarios"] >= block["simulated"]
        json.dumps(first)  # strict-JSON serializable (no inf/nan)

    def test_boundary_crash_times_policy(self):
        spec = CampaignSpec(
            name="boundaries",
            workloads=(WorkloadSpec(family="random", size=6),),
            npfs=(1,),
            measures=("ftbar", "reliability"),
            reliability=ReliabilitySpec(
                probabilities=(0.05,), crash_times="boundaries", boundary_limit=4
            ),
        )
        record = execute_job(expand_jobs(spec)[0])["record"]
        assert 1 < record["reliability"]["crash_times"] <= 4


class TestHeatmap:
    def test_campaign_run_and_heatmap(self, tmp_path):
        spec = heatmap_spec()
        store = ResultStore(tmp_path / "results.jsonl")
        report = run_campaign(spec, store=store)
        assert report.completed == report.total_jobs
        rendered = reliability_heatmap(spec, store)
        assert "0.01" in rendered and "0.1" in rendered
        for npf in (0, 1):
            assert any(
                line.strip().startswith(str(npf)) for line in rendered.splitlines()
            )
        mttf = reliability_heatmap(spec, store, value="mttf")
        assert "mttf heatmap" in mttf
        certified = reliability_heatmap(spec, store, value="certified")
        assert "certified heatmap" in certified

    def test_heatmap_without_reliability_spec(self, tmp_path):
        spec = CampaignSpec(
            name="plain",
            workloads=(WorkloadSpec(family="random", size=6),),
        )
        store = ResultStore(tmp_path / "results.jsonl")
        assert "no reliability spec" in reliability_heatmap(spec, store)

    def test_heatmap_without_records(self, tmp_path):
        spec = heatmap_spec()
        store = ResultStore(tmp_path / "results.jsonl")
        assert "no reliability records" in reliability_heatmap(spec, store)

    def test_heatmap_unknown_value_rejected(self, tmp_path):
        spec = heatmap_spec()
        store = ResultStore(tmp_path / "results.jsonl")
        with pytest.raises(ValueError, match="unknown heatmap value"):
            reliability_heatmap(spec, store, value="latency")


class TestCertifyCli:
    def test_certify_paper_example(self, capsys):
        assert main(["certify"]) == 0
        output = capsys.readouterr().out
        assert "CERTIFIED" in output
        assert "batch engine:" in output

    def test_certify_compare_engines(self, capsys):
        assert main(["certify", "--compare", "--probability", "0.1"]) == 0
        output = capsys.readouterr().out
        assert "bit-identical" in output

    def test_certify_problem_file_with_boundaries(self, tmp_path, capsys):
        problem = tmp_path / "problem.json"
        main(["generate", str(problem), "--operations", "8", "--npf", "1"])
        capsys.readouterr()
        assert main(["certify", str(problem), "--boundaries"]) == 0
        assert "crash times" in capsys.readouterr().out

    def test_certify_legacy_engine(self, capsys):
        assert main(["certify", "--legacy"]) == 0
        output = capsys.readouterr().out
        assert "batch engine:" not in output

    def test_campaign_heatmap_cli(self, tmp_path, capsys):
        from repro.campaign.spec import save_campaign

        spec_path = tmp_path / "spec.json"
        save_campaign(heatmap_spec(), spec_path)
        assert main(["campaign", "run", str(spec_path), "--quiet", "--no-cache"]) == 0
        capsys.readouterr()
        assert main(["campaign", "heatmap", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "reliability heatmap" in out
        assert main(
            ["campaign", "heatmap", str(spec_path), "--value", "mttf"]
        ) == 0
        assert "mttf heatmap" in capsys.readouterr().out
