"""Property-based tests (hypothesis) on the core invariants.

Strategies generate random levelled DAGs with random uniform timings on
fully connected architectures, then check the invariants the paper's
correctness argument rests on:

* structural validity of every FTBAR schedule (replication counts,
  resource exclusivity, data coverage);
* the nominal simulation reproduces the static schedule exactly;
* any single processor crash is masked when ``Npf = 1``;
* determinism;
* serialization round-trips.
"""

from __future__ import annotations

import math
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ftbar import schedule_ftbar
from repro.core.options import SchedulerOptions
from repro.baselines.list_scheduler import schedule_non_fault_tolerant
from repro.analysis.metrics import overhead_percent
from repro.schedule.serialization import (
    problem_from_dict,
    problem_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.schedule.validation import validate_schedule
from repro.simulation.executor import simulate
from repro.simulation.failures import FailureScenario
from repro.simulation.trace import EventStatus
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def workload_configs(draw, max_operations: int = 14, npf_values=(0, 1)):
    """Small random workloads (kept small: each example runs a scheduler)."""
    return RandomWorkloadConfig(
        operations=draw(st.integers(min_value=1, max_value=max_operations)),
        ccr=draw(st.sampled_from([0.1, 0.5, 1.0, 2.0, 5.0])),
        processors=draw(st.integers(min_value=2, max_value=4)),
        npf=draw(st.sampled_from(npf_values)),
        heterogeneous=draw(st.booleans()),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )


@given(config=workload_configs())
@_SETTINGS
def test_ftbar_schedules_are_structurally_valid(config):
    problem = generate_problem(config)
    result = schedule_ftbar(problem)
    report = validate_schedule(
        result.schedule,
        result.expanded_algorithm,
        problem.architecture,
        problem.exec_times,
        problem.comm_times,
    )
    assert report.ok, str(report)


@given(config=workload_configs())
@_SETTINGS
def test_every_operation_has_npf_plus_one_replicas_on_distinct_processors(config):
    problem = generate_problem(config)
    result = schedule_ftbar(problem)
    for operation in problem.algorithm.operation_names():
        replicas = result.schedule.replicas_of(operation)
        processors = [r.processor for r in replicas]
        assert len(replicas) >= config.npf + 1
        assert len(set(processors)) == len(processors)


@given(config=workload_configs())
@_SETTINGS
def test_nominal_simulation_reproduces_static_schedule(config):
    problem = generate_problem(config)
    result = schedule_ftbar(problem)
    trace = simulate(result.schedule, result.expanded_algorithm)
    for event in result.schedule.all_operations():
        outcome = trace.operation_outcome(event.operation, event.replica)
        assert outcome.status is EventStatus.COMPLETED
        assert math.isclose(outcome.start, event.start, abs_tol=1e-6)
        assert math.isclose(outcome.end, event.end, abs_tol=1e-6)


@given(config=workload_configs(npf_values=(1,)))
@_SETTINGS
def test_any_single_crash_is_masked_for_npf1(config):
    problem = generate_problem(config)
    result = schedule_ftbar(problem)
    algorithm = result.expanded_algorithm
    for processor in problem.architecture.processor_names():
        trace = simulate(
            result.schedule, algorithm, FailureScenario.crash(processor)
        )
        assert trace.all_operations_delivered(algorithm), processor


@given(config=workload_configs(npf_values=(1,)), at=st.floats(0.0, 50.0))
@_SETTINGS
def test_crash_at_any_time_is_masked_for_npf1(config, at):
    problem = generate_problem(config)
    result = schedule_ftbar(problem)
    algorithm = result.expanded_algorithm
    processor = problem.architecture.processor_names()[
        config.seed % config.processors
    ]
    trace = simulate(
        result.schedule, algorithm, FailureScenario.crash(processor, at=at)
    )
    assert trace.all_operations_delivered(algorithm)


@given(config=workload_configs())
@_SETTINGS
def test_scheduling_is_deterministic(config):
    problem = generate_problem(config)
    first = schedule_ftbar(problem)
    second = schedule_ftbar(problem)
    assert first.makespan == second.makespan
    assert [
        (e.operation, e.replica, e.processor, e.start)
        for e in first.schedule.all_operations()
    ] == [
        (e.operation, e.replica, e.processor, e.start)
        for e in second.schedule.all_operations()
    ]


@given(config=workload_configs(npf_values=(1, 2)))
@_SETTINGS
def test_replication_adds_replicas_and_overhead_is_well_defined(config):
    """Replication multiplies the work; the overhead stays below 100 %.

    Note the overhead itself may be *negative* at high CCR: forcing
    ``Npf + 1`` replicas makes the heuristic keep data local, which can
    beat the greedy distributed non-FT schedule when comms dominate.
    """
    problem = generate_problem(config)
    if config.npf + 1 > config.processors:
        return  # replication infeasible by construction
    ft = schedule_ftbar(problem)
    non_ft = schedule_non_fault_tolerant(problem)
    assert ft.schedule.replica_count() >= non_ft.schedule.replica_count()
    assert overhead_percent(ft.makespan, non_ft.makespan) < 100.0


@given(config=workload_configs())
@_SETTINGS
def test_problem_serialization_roundtrip(config):
    problem = generate_problem(config)
    rebuilt = problem_from_dict(problem_to_dict(problem))
    assert rebuilt.algorithm.dependencies() == problem.algorithm.dependencies()
    assert rebuilt.exec_times.entries() == problem.exec_times.entries()
    assert rebuilt.comm_times.entries() == problem.comm_times.entries()
    assert rebuilt.npf == problem.npf


@given(config=workload_configs())
@_SETTINGS
def test_schedule_serialization_roundtrip(config):
    problem = generate_problem(config)
    schedule = schedule_ftbar(problem).schedule
    rebuilt = schedule_from_dict(schedule_to_dict(schedule))
    assert rebuilt.makespan() == schedule.makespan()
    assert rebuilt.replica_count() == schedule.replica_count()
    assert rebuilt.comm_count() == schedule.comm_count()


@given(config=workload_configs(npf_values=(0,)))
@_SETTINGS
def test_link_insertion_never_invalidates(config):
    problem = generate_problem(config)
    result = schedule_ftbar(problem, SchedulerOptions(link_insertion=True))
    report = validate_schedule(
        result.schedule,
        result.expanded_algorithm,
        problem.architecture,
        problem.exec_times,
        problem.comm_times,
    )
    assert report.ok, str(report)


@given(
    durations=st.lists(
        st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=8
    ),
    seed=st.integers(0, 1000),
)
@_SETTINGS
def test_makespan_lower_bound_is_critical_path(durations, seed):
    """On one processor with Npf=0 the makespan is the sum of durations."""
    from repro.graphs.builder import linear_chain
    from tests.util import uniform_problem

    rng = random.Random(seed)
    chain = linear_chain(len(durations))
    problem = uniform_problem(chain, processors=1, npf=0)
    for index, duration in enumerate(durations):
        problem.exec_times.set(f"T{index}", "P1", duration)
    del rng
    result = schedule_ftbar(problem)
    assert math.isclose(result.makespan, sum(durations), rel_tol=1e-9)
