"""Tests for the two failure-detection options of section 5."""

import pytest

from repro.core.ftbar import schedule_ftbar
from repro.graphs.builder import diamond, linear_chain
from repro.simulation.executor import DetectionPolicy, simulate
from repro.simulation.failures import FailureScenario
from repro.simulation.trace import EventStatus

from tests.util import uniform_problem


def scheduled(problem):
    result = schedule_ftbar(problem)
    return result.schedule, result.expanded_algorithm


class TestOption1NoDetection:
    def test_comms_to_dead_processor_still_sent(self):
        problem = uniform_problem(diamond(), processors=3, npf=1, comm_time=2.0)
        schedule, algorithm = scheduled(problem)
        dead = "P1"
        trace = simulate(
            schedule, algorithm, FailureScenario.crash(dead), DetectionPolicy.NONE
        )
        toward_dead = [
            c for c in trace.comms
            if c.target_processor == dead and c.status is EventStatus.COMPLETED
        ]
        senders_alive = [
            c for c in schedule.all_comms() if c.target_processor == dead
            and c.source_processor != dead
        ]
        # Option 1: healthy senders keep transmitting toward the dead
        # processor (whenever such comms exist in the schedule).
        if senders_alive:
            assert toward_dead

    def test_no_detection_knowledge_recorded(self):
        problem = uniform_problem(diamond(), processors=3, npf=1, comm_time=2.0)
        schedule, algorithm = scheduled(problem)
        trace = simulate(
            schedule, algorithm, FailureScenario.crash("P1"), DetectionPolicy.NONE
        )
        assert trace.detections == {}


class TestOption2TimeoutArray:
    def make_crash_trace(self, comm_time=2.0):
        problem = uniform_problem(diamond(), processors=3, npf=1,
                                  comm_time=comm_time)
        schedule, algorithm = scheduled(problem)
        trace = simulate(
            schedule,
            algorithm,
            FailureScenario.crash("P1"),
            DetectionPolicy.TIMEOUT_ARRAY,
        )
        return schedule, trace

    def test_missed_comms_reveal_the_faulty_sender(self):
        schedule, trace = self.make_crash_trace()
        expected_receivers = {
            c.target_processor
            for c in schedule.all_comms()
            if c.source_processor == "P1"
        }
        for receiver in expected_receivers:
            assert "P1" in trace.detections.get(receiver, {}), trace.detections

    def test_detection_time_is_static_expected_end(self):
        schedule, trace = self.make_crash_trace()
        for receiver, known in trace.detections.items():
            for faulty, at in known.items():
                expected_ends = [
                    c.end
                    for c in schedule.all_comms()
                    if c.source_processor == faulty
                    and c.target_processor == receiver
                ]
                assert at in [pytest.approx(e) for e in expected_ends]

    def test_sends_toward_detected_processor_suppressed(self):
        schedule, trace = self.make_crash_trace()
        for comm in trace.comms:
            if comm.status is not EventStatus.COMPLETED:
                continue
            sender_knowledge = trace.detections.get(comm.source_processor, {})
            detected_at = sender_knowledge.get(comm.target_processor)
            if detected_at is not None:
                # Any comm actually sent toward P1 must have started
                # before its sender learned that P1 is dead.
                assert comm.start < detected_at + 1e-9

    def test_outputs_still_delivered_with_detection(self):
        problem = uniform_problem(linear_chain(3), processors=3, npf=1)
        schedule, algorithm = scheduled(problem)
        trace = simulate(
            schedule,
            algorithm,
            FailureScenario.crash("P2"),
            DetectionPolicy.TIMEOUT_ARRAY,
        )
        assert trace.outputs_completion(algorithm) is not None

    def test_detection_makespan_never_longer_than_option1(self):
        problem = uniform_problem(diamond(), processors=3, npf=1, comm_time=3.0)
        schedule, algorithm = scheduled(problem)
        scenario = FailureScenario.crash("P1")
        without = simulate(schedule, algorithm, scenario, DetectionPolicy.NONE)
        with_detection = simulate(
            schedule, algorithm, scenario, DetectionPolicy.TIMEOUT_ARRAY
        )
        # Skipping useless sends can only relieve the links.
        assert with_detection.makespan() <= without.makespan() + 1e-9
