"""Randomized corpus for the kernel's topology-symmetry pruning.

``test_compiled_kernel.py`` pins a fixed corpus with literal counter
values; this module sweeps a *randomized* corpus — fresh seeds over
every topology x npf x npl combination — and checks the property that
makes pruning admissible at all: a pruned run must be indistinguishable
from an unpruned one everywhere except the work counters.  Schedules,
serialized content hashes and the full StepRecord stream must be
bit-identical, and the orbit structure of each topology is pinned
(fully connected and bus collapse to one orbit, the star to two, rings
and every ``npl >= 1`` problem verify no usable group).
"""

from __future__ import annotations

import pytest

from test_engine_equivalence import ftbar_fingerprint, ftbar_trace

from repro.core.compile import CompiledProblem
from repro.core.ftbar import schedule_ftbar
from repro.core.options import SchedulerOptions
from repro.hardware.topologies import fully_connected, ring, single_bus, star
from repro.problem import ProblemSpec
from repro.schedule.serialization import content_hash, schedule_to_dict
from repro.timing.comm_times import CommunicationTimes
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem

OBJECT = SchedulerOptions(compiled=False)
COMPILED = SchedulerOptions()
COMPILED_NOSYM = SchedulerOptions(symmetry=False)

TOPOLOGIES = ("fc4", "bus4", "ring4", "star4")
#: Only these topologies offer 2 link-disjoint routes between every
#: processor pair, so npl=1 is feasible on them alone.
NPL1_TOPOLOGIES = ("fc4", "ring4")
SEEDS = (131, 132, 133, 134, 135)


def _on_topology(problem: ProblemSpec, architecture, suffix: str) -> ProblemSpec:
    """The same workload on a different interconnect (uniform durations)."""
    reference = problem.architecture.link_names()[0]
    comm_times = CommunicationTimes()
    for edge in problem.algorithm.dependencies():
        for link in architecture.link_names():
            comm_times.set(
                edge, link, problem.comm_times.time_of(edge, reference)
            )
    return ProblemSpec(
        algorithm=problem.algorithm,
        architecture=architecture,
        exec_times=problem.exec_times,
        comm_times=comm_times,
        npf=problem.npf,
        rtc=problem.rtc,
        name=f"{problem.name}-{suffix}",
        npl=problem.npl,
    )


def corpus_problem(topology: str, npf: int, npl: int, seed: int) -> ProblemSpec:
    """One randomized corpus problem (deterministic per coordinate)."""
    # Vary the graph size with the seed so the corpus covers different
    # candidate-set shapes, not five reruns of one shape.
    operations = 10 + (seed % 4) * 2 + (2 if npl == 0 else 0)
    base = generate_problem(
        RandomWorkloadConfig(
            operations=operations,
            ccr=1.0 + 0.25 * (seed % 3),
            processors=4,
            npf=npf,
            seed=seed,
        )
    )
    if topology == "bus4":
        problem = _on_topology(base, single_bus(4), "bus")
    elif topology == "ring4":
        problem = _on_topology(base, ring(4), "ring")
    elif topology == "star4":
        problem = _on_topology(base, star(4), "star")
    else:
        problem = base
    problem.npl = npl
    return problem


def corpus_coordinates() -> list[tuple[str, int, int, int]]:
    coordinates = []
    for topology in TOPOLOGIES:
        for npf in (0, 1, 2):
            for npl in (0, 1):
                if npl and topology not in NPL1_TOPOLOGIES:
                    continue
                for seed in SEEDS:
                    coordinates.append((topology, npf, npl, seed))
    return coordinates


def _compiled(problem: ProblemSpec) -> CompiledProblem:
    return CompiledProblem(
        problem.algorithm,
        problem.architecture,
        problem.exec_times,
        problem.comm_times,
        problem.npf,
        problem.npl,
    )


@pytest.mark.parametrize(
    "topology,npf,npl,seed",
    corpus_coordinates(),
    ids=lambda value: str(value),
)
def test_pruned_indistinguishable_from_unpruned(topology, npf, npl, seed):
    """Pruning may only change the counters, never the output."""
    problem = corpus_problem(topology, npf, npl, seed)
    pruned_trace = ftbar_trace(problem, COMPILED)
    unpruned_trace = ftbar_trace(problem, COMPILED_NOSYM)
    label = f"{topology}-npf{npf}-npl{npl}-seed{seed}"
    # The trace covers every scheduled event, every placed communication
    # and the full StepRecord stream; equal traces mean equal hashes,
    # but assert the fingerprints too so a failure names the digest.
    assert pruned_trace == unpruned_trace, f"{label}: traces diverge"
    assert ftbar_fingerprint(pruned_trace) == ftbar_fingerprint(
        unpruned_trace
    ), f"{label}: fingerprints diverge"
    assert pruned_trace == ftbar_trace(problem, OBJECT), (
        f"{label}: compiled diverges from the object engine"
    )

    pruned = schedule_ftbar(problem, COMPILED)
    unpruned = schedule_ftbar(problem, COMPILED_NOSYM)
    assert content_hash(
        "schedule", schedule_to_dict(pruned.schedule)
    ) == content_hash("schedule", schedule_to_dict(unpruned.schedule)), (
        f"{label}: serialized schedules diverge"
    )
    assert unpruned.stats.symmetry_pruned == 0, label
    group = _compiled(problem).symmetry_group()
    if group is None:
        # No usable group: pruning must be a strict no-op, counters
        # included.
        assert pruned.stats.symmetry_pruned == 0, label
        assert (
            pruned.stats.pressure_evaluations,
            pruned.stats.cache_hits,
        ) == (
            unpruned.stats.pressure_evaluations,
            unpruned.stats.cache_hits,
        ), f"{label}: counters moved without a group"
    else:
        # A live group never *adds* work: every evaluation it skips is
        # accounted in symmetry_pruned.
        assert pruned.stats.pressure_evaluations <= (
            unpruned.stats.pressure_evaluations
        ), label
        assert (
            pruned.stats.pressure_evaluations + pruned.stats.cache_hits
            + pruned.stats.symmetry_pruned
            >= unpruned.stats.pressure_evaluations + unpruned.stats.cache_hits
        ), f"{label}: pruned pairs unaccounted"


@pytest.mark.parametrize("npf", (0, 1, 2))
@pytest.mark.parametrize("seed", SEEDS[:2])
def test_orbit_structure_pinned(npf, seed):
    """Generator and orbit counts are a property of the topology alone."""
    expected = {
        # S4 on the processors: 7 verified generators collapse the
        # interconnect to a single orbit.
        "fc4": (7, 1),
        "bus4": (7, 1),
        # The star's center is fixed; the three leaves form one orbit.
        "star4": (3, 2),
    }
    for topology, (generators, orbits) in expected.items():
        group = _compiled(corpus_problem(topology, npf, 0, seed)).symmetry_group()
        assert group is not None, topology
        assert (len(group.generators), group.orbit_count()) == (
            generators,
            orbits,
        ), topology
    # Rings route multi-hop: the planner's tie-breaks are not
    # equivariant, so verification rejects every candidate.
    assert _compiled(corpus_problem("ring4", npf, 0, seed)).symmetry_group() is None
    # npl >= 1 problems never build a group.
    for topology in NPL1_TOPOLOGIES:
        assert (
            _compiled(corpus_problem(topology, npf, 1, seed)).symmetry_group()
            is None
        )


def test_pruning_engages_on_symmetric_topologies():
    """The corpus actually exercises pruning (not vacuous equivalence)."""
    pruned_somewhere = 0
    for topology in ("fc4", "bus4", "star4"):
        for seed in SEEDS:
            result = schedule_ftbar(
                corpus_problem(topology, 1, 0, seed), COMPILED
            )
            pruned_somewhere += result.stats.symmetry_pruned
    assert pruned_somewhere > 0
