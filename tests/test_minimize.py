"""Unit tests for Minimize_start_time (LIP duplication)."""

import pytest

from repro.core.minimize import StartTimeMinimizer
from repro.core.placement import PlacementPlanner
from repro.exceptions import SchedulingError
from repro.graphs.algorithm import from_dependencies
from repro.hardware.topologies import fully_connected
from repro.schedule.schedule import Schedule
from repro.timing.comm_times import CommunicationTimes
from repro.timing.exec_times import ExecutionTimes


def make_minimizer(comm_time: float, exec_time: float = 1.0, npf: int = 0,
                   duplication: bool = True):
    """A -> B on two processors; comm_time controls whether duplication pays."""
    algorithm = from_dependencies([("A", "B")])
    architecture = fully_connected(2)
    exec_times = ExecutionTimes.uniform(
        ["A", "B"], architecture.processor_names(), exec_time
    )
    comm_times = CommunicationTimes.uniform(
        [("A", "B")], architecture.link_names(), comm_time
    )
    planner = PlacementPlanner(algorithm, architecture, exec_times, comm_times, npf)
    minimizer = StartTimeMinimizer(
        planner=planner, exec_times=exec_times, duplication=duplication
    )
    schedule = Schedule(
        processors=architecture.processor_names(),
        links=architecture.link_names(),
        npf=npf,
    )
    return minimizer, schedule


class TestPlacement:
    def test_simple_placement_without_predecessors(self):
        minimizer, schedule = make_minimizer(comm_time=0.5)
        event = minimizer.place("A", "P1", schedule)
        assert (event.start, event.end) == (0.0, 1.0)
        assert not event.duplicated

    def test_forbidden_placement_raises(self):
        minimizer, schedule = make_minimizer(comm_time=0.5)
        minimizer.exec_times.forbid("A", "P2")
        with pytest.raises(SchedulingError, match="cannot be scheduled"):
            minimizer.place("A", "P2", schedule)


class TestDuplication:
    def test_expensive_comm_triggers_duplication(self):
        # comm 5.0 vs re-running A locally for 1.0: duplication wins.
        minimizer, schedule = make_minimizer(comm_time=5.0)
        minimizer.place("A", "P1", schedule)
        event = minimizer.place("B", "P2", schedule)
        duplicate = schedule.replica_on("A", "P2")
        assert duplicate is not None and duplicate.duplicated
        assert event.start == pytest.approx(1.0)  # right after local A copy
        assert schedule.comm_count() == 0
        assert minimizer.stats.kept == 1

    def test_duplicating_a_source_on_idle_processor_always_pays(self):
        # A is a source: its duplicate runs at time 0 in parallel, so
        # even a cheap comm (0.1) loses to the local copy.
        minimizer, schedule = make_minimizer(comm_time=0.1)
        minimizer.place("A", "P1", schedule)
        event = minimizer.place("B", "P2", schedule)
        assert schedule.replica_on("A", "P2").duplicated
        assert event.start == pytest.approx(1.0)

    def test_cheap_comm_wins_when_processor_is_busy(self):
        # P2 is busy until t=1, so a duplicated A would end at t=2 while
        # the comm delivers at 1.1: the trial duplication is rolled back.
        minimizer, schedule = make_minimizer(comm_time=0.1)
        schedule.place_operation("W", "P2", 0.0, 1.0)
        minimizer.place("A", "P1", schedule)
        event = minimizer.place("B", "P2", schedule)
        assert schedule.replica_on("A", "P2") is None
        assert schedule.comm_count() == 1
        assert event.start == pytest.approx(1.1)
        assert minimizer.stats.kept == 0
        assert minimizer.stats.rolled_back == 1

    def test_duplication_disabled(self):
        minimizer, schedule = make_minimizer(comm_time=5.0, duplication=False)
        minimizer.place("A", "P1", schedule)
        minimizer.place("B", "P2", schedule)
        assert schedule.replica_on("A", "P2") is None
        assert minimizer.stats.attempts == 0

    def test_rollback_restores_schedule_exactly(self):
        minimizer, schedule = make_minimizer(comm_time=0.1)
        schedule.place_operation("W", "P2", 0.0, 1.0)
        minimizer.place("A", "P1", schedule)
        before_ops = schedule.replica_count()
        minimizer.place("B", "P2", schedule)
        # Only B was added; the trial duplication of A was rolled back.
        assert schedule.replica_count() == before_ops + 1

    def test_recursive_duplication_up_a_chain(self):
        # X -> Y -> Z with huge comms: scheduling Z on P2 should pull both
        # Y and X onto P2.
        algorithm = from_dependencies([("X", "Y"), ("Y", "Z")])
        architecture = fully_connected(2)
        exec_times = ExecutionTimes.uniform(
            ["X", "Y", "Z"], architecture.processor_names(), 1.0
        )
        comm_times = CommunicationTimes.uniform(
            [("X", "Y"), ("Y", "Z")], architecture.link_names(), 10.0
        )
        planner = PlacementPlanner(algorithm, architecture, exec_times, comm_times, 0)
        minimizer = StartTimeMinimizer(planner=planner, exec_times=exec_times)
        schedule = Schedule(
            processors=architecture.processor_names(),
            links=architecture.link_names(),
            npf=0,
        )
        minimizer.place("X", "P1", schedule)
        minimizer.place("Y", "P1", schedule)
        event = minimizer.place("Z", "P2", schedule)
        assert schedule.replica_on("Y", "P2").duplicated
        assert schedule.replica_on("X", "P2").duplicated
        assert event.start == pytest.approx(2.0)
        assert schedule.comm_count() == 0

    def test_duplication_respects_distribution_constraints(self):
        minimizer, schedule = make_minimizer(comm_time=5.0)
        minimizer.exec_times.forbid("A", "P2")
        minimizer.place("A", "P1", schedule)
        minimizer.place("B", "P2", schedule)
        # A cannot run on P2, so B must wait for the comm.
        assert schedule.replica_on("A", "P2") is None
        assert schedule.comm_count() == 1

    def test_stats_merge(self):
        from repro.core.minimize import DuplicationStats

        first = DuplicationStats(attempts=2, kept=1, rolled_back=1, extra_replicas=1)
        second = DuplicationStats(attempts=3, kept=2, rolled_back=1, extra_replicas=2)
        first.merge(second)
        assert (first.attempts, first.kept) == (5, 3)
        assert (first.rolled_back, first.extra_replicas) == (2, 3)
