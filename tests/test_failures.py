"""Tests for the fail-silent failure scenario model."""

import math

import pytest

from repro.exceptions import SimulationError
from repro.simulation.failures import FailureScenario, ProcessorFailure


class TestProcessorFailure:
    def test_permanent_by_default(self):
        failure = ProcessorFailure("P1", 2.0)
        assert failure.permanent
        assert failure.covers(5.0)
        assert not failure.covers(1.0)

    def test_intermittent(self):
        failure = ProcessorFailure("P1", 2.0, 4.0)
        assert not failure.permanent
        assert failure.covers(3.0)
        assert not failure.covers(4.0)  # half-open interval

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            ProcessorFailure("P1", -1.0)

    def test_recovery_before_failure_rejected(self):
        with pytest.raises(SimulationError):
            ProcessorFailure("P1", 5.0, 3.0)

    def test_overlaps(self):
        failure = ProcessorFailure("P1", 2.0, 4.0)
        assert failure.overlaps(3.0, 5.0)
        assert failure.overlaps(0.0, 2.5)
        assert not failure.overlaps(4.0, 6.0)
        assert not failure.overlaps(0.0, 2.0)


class TestFailureScenario:
    def test_none_scenario(self):
        scenario = FailureScenario.none()
        assert scenario.is_up("P1", 1e9)
        assert scenario.failed_processors() == ()
        assert len(scenario) == 0

    def test_crash_constructor(self):
        scenario = FailureScenario.crash("P1", at=3.0)
        assert scenario.is_up("P1", 2.9)
        assert not scenario.is_up("P1", 3.0)
        assert scenario.failure_count() == 1

    def test_crashes_constructor(self):
        scenario = FailureScenario.crashes(["P1", "P2"])
        assert scenario.failed_processors() == ("P1", "P2")
        assert not scenario.is_up("P1", 0.0)
        assert not scenario.is_up("P2", 0.0)

    def test_intermittent_constructor(self):
        scenario = FailureScenario.intermittent("P1", 2.0, 4.0)
        assert scenario.is_up("P1", 1.0)
        assert not scenario.is_up("P1", 3.0)
        assert scenario.is_up("P1", 4.0)

    def test_overlapping_intervals_rejected(self):
        with pytest.raises(SimulationError, match="overlapping"):
            FailureScenario(
                [
                    ProcessorFailure("P1", 1.0, 5.0),
                    ProcessorFailure("P1", 3.0, 7.0),
                ]
            )

    def test_up_during(self):
        scenario = FailureScenario.intermittent("P1", 2.0, 4.0)
        assert scenario.up_during("P1", 0.0, 2.0)
        assert not scenario.up_during("P1", 1.0, 3.0)
        assert scenario.up_during("P1", 4.0, 9.0)
        assert scenario.up_during("P2", 0.0, 100.0)

    def test_resume_time(self):
        scenario = FailureScenario.intermittent("P1", 2.0, 4.0)
        assert scenario.resume_time("P1", 1.0) == 1.0  # already up
        assert scenario.resume_time("P1", 3.0) == 4.0
        assert math.isinf(FailureScenario.crash("P1").resume_time("P1", 1.0))

    def test_next_crash_after(self):
        scenario = FailureScenario.intermittent("P1", 2.0, 4.0)
        assert scenario.next_crash_after("P1", 0.0) == 2.0
        assert scenario.next_crash_after("P1", 3.0) == 2.0  # covering interval
        assert math.isinf(scenario.next_crash_after("P1", 5.0))

    def test_next_window_simple(self):
        scenario = FailureScenario.intermittent("P1", 2.0, 4.0)
        assert scenario.next_window("P1", 0.0, 1.0) == 0.0
        # [1.5, 2.5) would overlap the failure: pushed to recovery.
        assert scenario.next_window("P1", 1.5, 1.0) == 4.0

    def test_next_window_permanent(self):
        scenario = FailureScenario.crash("P1", at=5.0)
        assert scenario.next_window("P1", 0.0, 1.0) == 0.0
        assert scenario.next_window("P1", 4.5, 1.0) is None
        assert scenario.next_window("P1", 9.0, 1.0) is None

    def test_next_window_skips_several_intervals(self):
        scenario = FailureScenario(
            [
                ProcessorFailure("P1", 1.0, 2.0),
                ProcessorFailure("P1", 2.5, 3.5),
            ]
        )
        # Needs 1.0 contiguous units: [0,1) fits.
        assert scenario.next_window("P1", 0.0, 1.0) == 0.0
        # Starting from 0.5 the windows [0.5,1.5) and [2,3) are blocked;
        # first fit is [3.5, 4.5).
        assert scenario.next_window("P1", 0.5, 1.0) == 3.5

    def test_iteration_sorted(self):
        scenario = FailureScenario(
            [ProcessorFailure("P2", 1.0), ProcessorFailure("P1", 0.0)]
        )
        assert [f.processor for f in scenario] == ["P1", "P2"]
