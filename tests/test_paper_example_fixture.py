"""Tests for the Figure 2 / Tables 1-2 fixture itself."""

import math

import pytest

from repro.workloads.paper_example import (
    COMMUNICATION_TABLE,
    EXECUTION_TABLE,
    PAPER_RTC,
    build_algorithm,
    build_architecture,
    build_comm_times,
    build_exec_times,
    build_problem,
)


class TestAlgorithm:
    def test_nine_operations(self):
        assert len(build_algorithm()) == 9

    def test_eleven_dependencies(self):
        assert build_algorithm().number_of_dependencies() == 11

    def test_io_kinds(self):
        algorithm = build_algorithm()
        assert algorithm.operation("I").is_external_io()
        assert algorithm.operation("O").is_external_io()
        assert algorithm.operation("A").is_computation()

    def test_figure2_shape(self):
        algorithm = build_algorithm()
        assert algorithm.sources() == ("I",)
        assert algorithm.sinks() == ("O",)
        assert algorithm.successors("A") == ("B", "C", "D", "E")
        assert algorithm.predecessors("G") == ("D", "E", "F")
        assert algorithm.predecessors("F") == ("B", "C")


class TestArchitecture:
    def test_three_processors_three_links(self):
        architecture = build_architecture()
        assert architecture.processor_names() == ("P1", "P2", "P3")
        assert architecture.link_names() == ("L1.2", "L1.3", "L2.3")

    def test_fully_connected_point_to_point(self):
        architecture = build_architecture()
        assert architecture.is_fully_connected()
        assert all(link.is_point_to_point() for link in architecture.links())


class TestTables:
    def test_table1_spot_values(self):
        exe = build_exec_times()
        assert exe.time_of("A", "P1") == 2.0
        assert exe.time_of("B", "P2") == 1.0
        assert exe.time_of("G", "P1") == 1.4
        assert math.isinf(exe.time_of("I", "P3"))
        assert math.isinf(exe.time_of("O", "P2"))

    def test_table2_spot_values(self):
        com = build_comm_times()
        assert com.time_of(("I", "A"), "L1.2") == 1.75
        assert com.time_of(("I", "A"), "L2.3") == 1.25
        assert com.time_of(("D", "G"), "L1.2") == 1.9
        assert com.time_of(("G", "O"), "L1.3") == 0.6

    def test_l13_and_l23_are_twins(self):
        for edge, (_, l23, l13) in COMMUNICATION_TABLE.items():
            assert l23 == l13, edge

    def test_l12_slower_than_others(self):
        for edge, (l12, l23, _) in COMMUNICATION_TABLE.items():
            assert l12 > l23, edge

    def test_tables_cover_the_graphs(self):
        problem = build_problem()
        problem.validate()

    def test_execution_table_covers_all_operations(self):
        assert set(EXECUTION_TABLE) == set("IABCDEFGO")


class TestProblem:
    def test_default_npf_and_rtc(self):
        problem = build_problem()
        assert problem.npf == 1
        assert problem.rtc.global_deadline == PAPER_RTC

    def test_npf_override(self):
        assert build_problem(npf=0).npf == 0
