"""Tests for the cyclic (multi-iteration) execution model."""

import pytest

from repro.core.ftbar import schedule_ftbar
from repro.exceptions import SimulationError
from repro.graphs.builder import diamond, linear_chain
from repro.simulation.executor import DetectionPolicy
from repro.simulation.failures import FailureScenario, ProcessorFailure
from repro.simulation.iterative import (
    IterativeSimulator,
    simulate_iterations,
)
from repro.simulation.trace import EventStatus

from tests.util import uniform_problem


def scheduled(npf: int = 1, processors: int = 3, comm_time: float = 0.5):
    problem = uniform_problem(
        diamond(), processors=processors, npf=npf, comm_time=comm_time
    )
    result = schedule_ftbar(problem)
    return result.schedule, result.expanded_algorithm


class TestNominalIterations:
    def test_every_iteration_identical(self):
        schedule, algorithm = scheduled()
        run = simulate_iterations(schedule, algorithm, iterations=4)
        assert len(run) == 4
        assert run.delivered_count() == 4
        makespans = {i.trace.makespan() for i in run.iterations}
        assert len(makespans) == 1

    def test_offsets_follow_the_period(self):
        schedule, algorithm = scheduled()
        run = simulate_iterations(schedule, algorithm, iterations=3)
        period = schedule.makespan()
        assert [i.offset for i in run.iterations] == [
            pytest.approx(k * period) for k in range(3)
        ]

    def test_custom_period_spaces_iterations(self):
        schedule, algorithm = scheduled()
        period = schedule.makespan() + 5.0
        run = simulate_iterations(
            schedule, algorithm, iterations=3, period=period
        )
        assert run.iterations[1].offset == pytest.approx(period)
        assert run.overruns() == ()

    def test_total_time(self):
        schedule, algorithm = scheduled()
        run = simulate_iterations(schedule, algorithm, iterations=3)
        assert run.total_time() == pytest.approx(3 * schedule.makespan())

    def test_zero_iterations(self):
        schedule, algorithm = scheduled()
        run = simulate_iterations(schedule, algorithm, iterations=0)
        assert len(run) == 0
        assert run.total_time() == 0.0

    def test_negative_iterations_rejected(self):
        schedule, algorithm = scheduled()
        with pytest.raises(SimulationError):
            simulate_iterations(schedule, algorithm, iterations=-1)

    def test_invalid_period_rejected(self):
        schedule, algorithm = scheduled()
        with pytest.raises(SimulationError):
            IterativeSimulator(schedule, algorithm, period=0.0)


class TestCrashesAcrossIterations:
    def test_crash_mid_run_degrades_later_iterations_only(self):
        schedule, algorithm = scheduled(comm_time=2.0)
        period = schedule.makespan()
        # Crash P1 during iteration 2 (absolute time 1.5 periods).
        run = simulate_iterations(
            schedule,
            algorithm,
            iterations=4,
            scenario=FailureScenario.crash("P1", at=1.5 * period),
        )
        assert run.delivered_count() == 4  # npf=1 masks the crash
        first = run.iterations[0].trace
        last = run.iterations[3].trace
        assert all(
            o.status is EventStatus.COMPLETED for o in first.operations
        )
        assert any(o.status is not EventStatus.COMPLETED for o in last.operations)

    def test_intermittent_processor_recovers_in_a_later_iteration(self):
        schedule, algorithm = scheduled()
        period = schedule.makespan()
        # P1 is down for the whole of iteration 1 but healthy afterwards
        # (option 1: no detection, so it resumes producing results).
        run = simulate_iterations(
            schedule,
            algorithm,
            iterations=3,
            scenario=FailureScenario.intermittent("P1", 0.0, 1.2 * period),
        )
        assert run.delivered_count() == 3
        final = run.iterations[2].trace
        assert all(
            o.status is EventStatus.COMPLETED for o in final.operations
        )

    def test_overrun_delays_the_next_iteration(self):
        schedule, algorithm = scheduled(comm_time=2.0)
        period = schedule.makespan()
        run = simulate_iterations(
            schedule,
            algorithm,
            iterations=2,
            scenario=FailureScenario.crash("P1", at=0.0),
        )
        if run.iterations[0].trace.makespan() > period:
            assert run.iterations[1].offset > period
            assert run.overruns()


class TestDetectionAcrossIterations:
    def crash_run(self, detection):
        schedule, algorithm = scheduled(comm_time=2.0)
        return (
            schedule,
            simulate_iterations(
                schedule,
                algorithm,
                iterations=3,
                scenario=FailureScenario.crash("P1", at=0.0),
                detection=detection,
            ),
        )

    def test_knowledge_persists_into_subsequent_iterations(self):
        schedule, run = self.crash_run(DetectionPolicy.TIMEOUT_ARRAY)
        later = run.iterations[2].trace
        # Option 2: comms toward the dead processor are suppressed in
        # later iterations (knowledge carried over, effective at t=0).
        toward_dead = [
            c for c in later.comms if c.target_processor == "P1"
        ]
        for comm in toward_dead:
            assert comm.status is EventStatus.SKIPPED, comm

    def test_option1_keeps_sending_forever(self):
        schedule, run = self.crash_run(DetectionPolicy.NONE)
        later = run.iterations[2].trace
        sent_toward_dead = [
            c
            for c in later.comms
            if c.target_processor == "P1"
            and c.source_processor != "P1"
            and c.status is EventStatus.COMPLETED
        ]
        statically_toward_dead = [
            c
            for c in schedule.all_comms()
            if c.target_processor == "P1" and c.source_processor != "P1"
        ]
        if statically_toward_dead:
            assert sent_toward_dead

    def test_all_iterations_still_delivered_with_detection(self):
        _, run = self.crash_run(DetectionPolicy.TIMEOUT_ARRAY)
        assert run.delivered_count() == 3

    def test_summary_mentions_counts(self):
        _, run = self.crash_run(DetectionPolicy.NONE)
        assert "3 iterations" in run.summary()
        assert "3 delivered" in run.summary()


class TestIntermittentWithDetection:
    """Section 5's drawback of option 2, verified.

    "When a processor is detected to be faulty, the other healthy
    processors will update their array of faulty processors, and will
    not send any more data during the subsequent iterations.  So even
    if this faulty processor comes back to life, it will not receive
    any inputs and will not be able to perform any computation."
    """

    def run_intermittent(self, detection):
        # A topology engineered so that BOTH healthy processors expect
        # comms from P3 (and therefore detect its failure), while P3
        # hosts replicas fed only by remote comms (and therefore starves
        # once everyone excludes it):
        #   X on {P1,P2};  Y on {P2,P3};  Y2 on {P1,P3};
        #   W on {P1,P2} (W/0 on P1 receives Y/1 from P3);
        #   W2 on {P2,P3} (W2/0 on P2 receives Y2/1 from P3).
        from repro.graphs.algorithm import from_dependencies

        graph = from_dependencies(
            [("X", "Y"), ("X", "Y2"), ("Y", "W"), ("Y2", "W2")]
        )
        problem = uniform_problem(graph, processors=3, npf=1, comm_time=0.3)
        allowed = {
            "X": ("P1", "P2"),
            "Y": ("P2", "P3"),
            "Y2": ("P1", "P3"),
            "W": ("P1", "P2"),
            "W2": ("P2", "P3"),
        }
        for operation, hosts in allowed.items():
            for processor in ("P1", "P2", "P3"):
                if processor not in hosts:
                    problem.exec_times.forbid(operation, processor)
        result = schedule_ftbar(problem)
        schedule, algorithm = result.schedule, result.expanded_algorithm
        period = schedule.makespan()
        victim = "P3"
        scenario = FailureScenario.intermittent(victim, 0.0, 1.1 * period)
        run = simulate_iterations(
            schedule, algorithm, iterations=3,
            scenario=scenario, detection=detection,
        )
        return schedule, victim, run

    def test_option2_recovered_processor_stays_excluded(self):
        schedule, victim, run = self.run_intermittent(
            DetectionPolicy.TIMEOUT_ARRAY
        )
        final = run.iterations[2].trace
        # The processor is healthy again, but every comm toward it is
        # suppressed by the persistent faulty arrays...
        toward = [c for c in final.comms if c.target_processor == victim]
        assert toward, "schedule sends nothing toward the victim"
        assert all(c.status is EventStatus.SKIPPED for c in toward)
        # ...so its comm-fed replicas starve even though it is alive.
        starved_on_victim = [
            o for o in final.operations
            if o.processor == victim and o.status is EventStatus.STARVED
        ]
        assert starved_on_victim

    def test_option1_recovered_processor_computes_again(self):
        _, victim, run = self.run_intermittent(DetectionPolicy.NONE)
        final = run.iterations[2].trace
        on_victim = [o for o in final.operations if o.processor == victim]
        assert all(o.status is EventStatus.COMPLETED for o in on_victim)

    def test_outputs_survive_either_way(self):
        for detection in (DetectionPolicy.NONE, DetectionPolicy.TIMEOUT_ARRAY):
            _, _, run = self.run_intermittent(detection)
            assert run.delivered_count() == 3, detection


class TestBeyondHypothesisIterative:
    def test_lost_outputs_reported_per_iteration(self):
        problem = uniform_problem(linear_chain(3), processors=3, npf=1)
        result = schedule_ftbar(problem)
        period = result.makespan
        run = simulate_iterations(
            result.schedule,
            result.expanded_algorithm,
            iterations=3,
            scenario=FailureScenario(
                [
                    ProcessorFailure("P1", 1.2 * period),
                    ProcessorFailure("P2", 1.2 * period),
                ]
            ),
        )
        assert run.iterations[0].delivered
        assert not run.iterations[2].delivered
        assert len(run.missed()) >= 1
