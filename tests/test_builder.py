"""Unit tests for the fluent builder and canned graph families."""

import pytest

from repro.exceptions import GraphError
from repro.graphs.builder import (
    AlgorithmGraphBuilder,
    diamond,
    fork_join,
    independent_tasks,
    layered,
    linear_chain,
)


class TestBuilder:
    def test_fluent_chain_returns_builder(self):
        builder = AlgorithmGraphBuilder()
        assert builder.computation("A") is builder
        assert builder.memory("M") is builder
        assert builder.external_io("I") is builder

    def test_depends_adds_incoming_edges(self):
        graph = (
            AlgorithmGraphBuilder()
            .computation("A", "B", "C")
            .depends("C", on=["A", "B"])
            .build()
        )
        assert graph.predecessors("C") == ("A", "B")

    def test_feeds_adds_outgoing_edges(self):
        graph = (
            AlgorithmGraphBuilder()
            .computation("A", "B", "C")
            .feeds("A", into=["B", "C"])
            .build()
        )
        assert graph.successors("A") == ("B", "C")

    def test_chain_links_consecutive(self):
        graph = (
            AlgorithmGraphBuilder()
            .computation("A", "B", "C")
            .chain("A", "B", "C")
            .build()
        )
        assert graph.has_dependency("A", "B")
        assert graph.has_dependency("B", "C")
        assert not graph.has_dependency("A", "C")

    def test_data_size_propagated(self):
        graph = (
            AlgorithmGraphBuilder()
            .computation("A", "B")
            .feeds("A", into=["B"], data_size=4.0)
            .build()
        )
        assert graph.data_size("A", "B") == 4.0

    def test_build_validates_by_default(self):
        builder = AlgorithmGraphBuilder()
        with pytest.raises(GraphError):
            builder.build()

    def test_build_without_validation(self):
        graph = AlgorithmGraphBuilder().build(validate=False)
        assert len(graph) == 0

    def test_kinds_assigned(self):
        graph = (
            AlgorithmGraphBuilder()
            .external_io("I")
            .memory("M")
            .computation("A")
            .build()
        )
        assert graph.operation("I").is_external_io()
        assert graph.operation("M").is_memory()
        assert graph.operation("A").is_computation()


class TestFamilies:
    def test_linear_chain_shape(self):
        graph = linear_chain(4)
        assert len(graph) == 4
        assert graph.sources() == ("T0",)
        assert graph.sinks() == ("T3",)
        assert graph.number_of_dependencies() == 3

    def test_linear_chain_of_one(self):
        graph = linear_chain(1)
        assert len(graph) == 1
        assert graph.number_of_dependencies() == 0

    def test_linear_chain_rejects_zero(self):
        with pytest.raises(ValueError):
            linear_chain(0)

    def test_fork_join_shape(self):
        graph = fork_join(3)
        assert len(graph) == 5
        assert graph.successors("src") == ("T0", "T1", "T2")
        assert graph.predecessors("sink") == ("T0", "T1", "T2")

    def test_fork_join_rejects_zero(self):
        with pytest.raises(ValueError):
            fork_join(0)

    def test_diamond_shape(self):
        graph = diamond()
        assert dict(graph.levels()) == {"A": 0, "B": 1, "C": 1, "D": 2}

    def test_independent_tasks(self):
        graph = independent_tasks(5)
        assert len(graph) == 5
        assert graph.number_of_dependencies() == 0
        assert graph.sources() == graph.sinks()

    def test_independent_rejects_zero(self):
        with pytest.raises(ValueError):
            independent_tasks(0)

    def test_layered_fully_connects_consecutive(self):
        graph = layered([2, 3, 1])
        assert len(graph) == 6
        # 2*3 + 3*1 edges
        assert graph.number_of_dependencies() == 9
        assert graph.sinks() == ("T2_0",)

    def test_layered_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            layered([])
        with pytest.raises(ValueError):
            layered([2, 0])
