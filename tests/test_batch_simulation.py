"""Batched vs per-scenario simulation: bit-identical by construction.

The batch engine (compile-once arrays, dirty-cone re-decision,
footprint-equivalence pruning) is a pure-performance change: every
trace and every masking verdict must equal the per-scenario
``ScheduleSimulator`` exactly.  The corpus crosses random-DAG schedules
(seeds x npf x point-to-point/bus topologies) with crash subsets at
several instants, intermittent and link failures, and both detection
policies — plus a hand-built schedule whose nominal replay needs the
executor's stalled-worklist relaxation (the path that disables the
dirty-cone optimization).
"""

import itertools

import pytest

from repro.analysis.experiments import _bus_variant
from repro.analysis.reliability import (
    event_boundary_times,
    fault_tolerance_certificate,
    schedule_reliability,
)
from repro.core.ftbar import schedule_ftbar
from repro.exceptions import SimulationError
from repro.graphs.algorithm import from_dependencies
from repro.schedule.schedule import Schedule
from repro.simulation.batch import BatchScenarioEngine
from repro.simulation.compiled import CompiledSchedule
from repro.simulation.executor import (
    DetectionPolicy,
    ScheduleSimulator,
    simulate,
)
from repro.simulation.failures import (
    FailureScenario,
    LinkFailure,
    ProcessorFailure,
)
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem


def corpus_schedule(seed: int, npf: int, topology: str = "p2p"):
    problem = generate_problem(
        RandomWorkloadConfig(
            operations=12, ccr=1.0, processors=4, npf=npf, seed=seed
        )
    )
    if topology == "bus":
        problem = _bus_variant(problem)
    result = schedule_ftbar(problem)
    return result.schedule, result.expanded_algorithm


def crash_scenarios(schedule, max_size: int = 3, times=(0.0, 5.0, 40.0)):
    processors = schedule.processor_names()
    for size in range(1, max_size + 1):
        for subset in itertools.combinations(processors, size):
            for at in times:
                yield FailureScenario.crashes(subset, at=at)


def assert_traces_equal(reference, candidate, context: str) -> None:
    assert reference.operations == candidate.operations, context
    assert reference.comms == candidate.comms, context
    assert reference.detections == candidate.detections, context


def stall_schedule():
    """A schedule whose nominal replay needs the worklist relaxation.

    ``A``'s second arrival (from ``X/1`` on ``L3``) is statically
    ordered *behind* a comm produced by ``B``, which runs after ``A``
    on the same processor — the conservative wait-for-all-arrivals rule
    deadlocks and the executor fires ``A`` from its first delivered
    arrival, exactly what the blocking-receive executive would do.
    """
    algorithm = from_dependencies([("X", "A"), ("B", "C")])
    schedule = Schedule(["P1", "P2", "P3"], ["L2", "L3"], npf=1, name="stall")
    schedule.place_operation("X", "P2", 0.0, 1.0)
    schedule.place_operation("X", "P3", 0.0, 1.0)
    schedule.place_operation("A", "P1", 2.0, 1.0)
    schedule.place_operation("B", "P1", 3.5, 1.0)
    schedule.place_operation("C", "P3", 6.0, 1.0)
    schedule.place_comm("X", "A", 0, 0, "L2", 1.0, 1.0, "P2", "P1")
    schedule.place_comm("B", "C", 0, 0, "L3", 4.5, 1.0, "P1", "P3")
    schedule.place_comm("X", "A", 1, 0, "L3", 5.6, 0.5, "P3", "P1")
    return schedule, algorithm


class TestTraceEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("npf", [0, 1, 2])
    def test_crash_subsets_bit_identical(self, seed, npf):
        schedule, algorithm = corpus_schedule(seed, npf)
        for detection in DetectionPolicy:
            engine = BatchScenarioEngine(schedule, algorithm, detection)
            for scenario in crash_scenarios(schedule):
                reference = simulate(schedule, algorithm, scenario, detection)
                assert_traces_equal(
                    reference,
                    engine.run(scenario),
                    f"seed={seed} npf={npf} {detection} {scenario!r}",
                )

    @pytest.mark.parametrize("topology", ["p2p", "bus"])
    def test_nominal_equals_executor(self, topology):
        schedule, algorithm = corpus_schedule(0, 1, topology)
        engine = BatchScenarioEngine(schedule, algorithm)
        assert_traces_equal(
            simulate(schedule, algorithm), engine.run(), topology
        )

    @pytest.mark.parametrize("seed", [0, 5])
    def test_bus_topology_with_detection(self, seed):
        schedule, algorithm = corpus_schedule(seed, 1, "bus")
        detection = DetectionPolicy.TIMEOUT_ARRAY
        engine = BatchScenarioEngine(schedule, algorithm, detection)
        for scenario in crash_scenarios(schedule, max_size=2):
            reference = simulate(schedule, algorithm, scenario, detection)
            assert_traces_equal(
                reference, engine.run(scenario), repr(scenario)
            )

    @pytest.mark.parametrize("topology", ["ring", "star"])
    def test_multi_hop_routes_bit_identical(self, topology):
        # Ring/star schedules route comms over relays (hop_index > 0),
        # exercising the compiled previous-hop chains.
        from repro.campaign.jobs import build_problem as build_campaign_problem
        from repro.campaign.spec import WorkloadSpec

        problem = build_campaign_problem(
            WorkloadSpec(family="random", size=10), topology, 4, 1, 1.0, 0
        )
        result = schedule_ftbar(problem)
        schedule, algorithm = result.schedule, result.expanded_algorithm
        engine = BatchScenarioEngine(schedule, algorithm)
        for scenario in crash_scenarios(schedule, max_size=2, times=(0.0, 8.0)):
            reference = simulate(schedule, algorithm, scenario)
            assert_traces_equal(
                reference, engine.run(scenario), f"{topology} {scenario!r}"
            )

    def test_intermittent_and_link_failures(self):
        schedule, algorithm = corpus_schedule(2, 1)
        processors = schedule.processor_names()
        links = schedule.link_names()
        scenarios = [
            FailureScenario.intermittent(processors[0], 2.0, 9.0),
            FailureScenario(
                [
                    ProcessorFailure(processors[1], 3.0, 8.0),
                    ProcessorFailure(processors[2], 0.0),
                ]
            ),
            FailureScenario.link_down(links[0], at=1.0),
            FailureScenario(
                [
                    LinkFailure(links[1], 0.0, 6.0),
                    ProcessorFailure(processors[0], 4.0),
                ]
            ),
        ]
        engine = BatchScenarioEngine(schedule, algorithm)
        for scenario in scenarios:
            reference = simulate(schedule, algorithm, scenario)
            assert_traces_equal(reference, engine.run(scenario), repr(scenario))

    def test_trace_memo_returns_identical_object(self):
        schedule, algorithm = corpus_schedule(0, 1)
        engine = BatchScenarioEngine(schedule, algorithm)
        scenario = FailureScenario.crash(schedule.processor_names()[0])
        first = engine.run(scenario)
        again = engine.run(FailureScenario.crash(schedule.processor_names()[0]))
        assert first is again
        assert engine.stats.memo_hits >= 1


class TestStalledWorklist:
    def test_executor_needs_relaxation(self):
        schedule, algorithm = stall_schedule()
        compiled = CompiledSchedule(schedule, algorithm)
        assert compiled.replay().relaxed_fires == 1

    def test_batched_matches_relaxed_executor(self):
        schedule, algorithm = stall_schedule()
        engine = BatchScenarioEngine(schedule, algorithm)
        assert_traces_equal(
            simulate(schedule, algorithm), engine.run(), "nominal"
        )
        for scenario in crash_scenarios(schedule, times=(0.0, 0.5, 4.0)):
            reference = simulate(schedule, algorithm, scenario)
            assert_traces_equal(reference, engine.run(scenario), repr(scenario))

    def test_masking_verdicts_match_on_stall_schedule(self):
        schedule, algorithm = stall_schedule()
        engine = BatchScenarioEngine(schedule, algorithm)
        simulator = ScheduleSimulator(schedule, algorithm)
        times = (0.0, 2.5)
        for size in (1, 2, 3):
            for subset in itertools.combinations(
                schedule.processor_names(), size
            ):
                expected = all(
                    simulator.run(
                        FailureScenario.crashes(subset, at=at)
                    ).all_operations_delivered(algorithm)
                    for at in times
                )
                assert engine.crash_subset_masked(subset, times) == expected


class TestMaskingVerdicts:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("detection", list(DetectionPolicy))
    def test_verdicts_match_legacy(self, seed, detection):
        schedule, algorithm = corpus_schedule(seed, 1)
        engine = BatchScenarioEngine(schedule, algorithm, detection)
        simulator = ScheduleSimulator(schedule, algorithm, detection)
        times = (0.0, 7.5)
        for size in range(0, 4):
            for subset in itertools.combinations(
                schedule.processor_names(), size
            ):
                expected = all(
                    simulator.run(
                        FailureScenario.crashes(subset, at=at)
                    ).all_operations_delivered(algorithm)
                    for at in times
                ) if subset else simulator.run().all_operations_delivered(
                    algorithm
                )
                assert (
                    engine.crash_subset_masked(subset, times) == expected
                ), f"seed={seed} {detection} {subset}"

    def test_nominal_equivalence_pruning(self):
        schedule, algorithm = corpus_schedule(0, 1)
        engine = BatchScenarioEngine(schedule, algorithm)
        late = schedule.makespan() + 1.0
        processor = schedule.processor_names()[0]
        assert engine.crash_subset_masked((processor,), (late,))
        assert engine.stats.pruned_nominal == 1
        assert engine.stats.simulated == 0

    def test_unused_processor_reduction(self):
        # A diamond on 4 processors with npf=0 leaves processors idle;
        # crashing an idle processor is the nominal equivalence class.
        algorithm = from_dependencies([("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")])
        from tests.util import uniform_problem

        problem = uniform_problem(algorithm, processors=4, npf=0)
        result = schedule_ftbar(problem)
        schedule = result.schedule
        engine = BatchScenarioEngine(schedule, result.expanded_algorithm)
        used = {e.processor for e in schedule.all_operations()}
        used |= {c.source_processor for c in schedule.all_comms()}
        used |= {c.target_processor for c in schedule.all_comms()}
        idle = [p for p in schedule.processor_names() if p not in used]
        if not idle:
            pytest.skip("scheduler used every processor for this workload")
        assert engine.crash_subset_masked(tuple(idle), (0.0,))
        assert engine.stats.simulated == 0

    def test_verdict_memo_across_repeats(self):
        schedule, algorithm = corpus_schedule(1, 1)
        engine = BatchScenarioEngine(schedule, algorithm)
        subset = schedule.processor_names()[:2]
        engine.crash_subset_masked(subset, (0.0,))
        simulated = engine.stats.simulated
        engine.crash_subset_masked(subset, (0.0,))
        assert engine.stats.simulated == simulated
        assert engine.stats.memo_hits >= 1


class TestBatchedReliability:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("npf", [0, 1, 2])
    def test_certificate_bit_identical(self, seed, npf):
        schedule, algorithm = corpus_schedule(seed, npf)
        for crash_times in ((0.0,), event_boundary_times(schedule, limit=6)):
            legacy = fault_tolerance_certificate(
                schedule, algorithm, crash_times=crash_times, batched=False
            )
            batched = fault_tolerance_certificate(
                schedule, algorithm, crash_times=crash_times
            )
            assert [
                (l.failures, l.masked_subsets, l.total_subsets)
                for l in legacy.levels
            ] == [
                (l.failures, l.masked_subsets, l.total_subsets)
                for l in batched.levels
            ]
            assert legacy.breaking_subsets == batched.breaking_subsets
            assert legacy.certified == batched.certified

    @pytest.mark.parametrize("seed", [0, 1])
    def test_reliability_bit_identical_floats(self, seed):
        schedule, algorithm = corpus_schedule(seed, 1)
        probabilities = {
            p: 0.03 * (i + 1)
            for i, p in enumerate(schedule.processor_names())
        }
        legacy = schedule_reliability(
            schedule, algorithm, probabilities, batched=False
        )
        batched = schedule_reliability(schedule, algorithm, probabilities)
        assert legacy.reliability == batched.reliability
        assert legacy.masked_probability_mass == batched.masked_probability_mass
        assert legacy.guaranteed_lower_bound == batched.guaranteed_lower_bound
        assert legacy.evaluated_subsets == batched.evaluated_subsets

    def test_shared_engine_across_certificate_and_reliability(self):
        schedule, algorithm = corpus_schedule(0, 1)
        engine = BatchScenarioEngine(schedule, algorithm)
        fault_tolerance_certificate(schedule, algorithm, engine=engine)
        before = engine.stats.simulated
        report = schedule_reliability(
            schedule,
            algorithm,
            {p: 0.1 for p in schedule.processor_names()},
            engine=engine,
        )
        # The 2^P sweep re-asks the certificate's subsets: all memo hits
        # except the sizes the certificate never simulated.
        assert engine.stats.memo_hits > 0
        legacy = schedule_reliability(
            schedule,
            algorithm,
            {p: 0.1 for p in schedule.processor_names()},
            batched=False,
        )
        assert report.reliability == legacy.reliability
        assert engine.stats.simulated >= before

    def test_engine_detection_mismatch_rejected(self):
        schedule, algorithm = corpus_schedule(0, 1)
        engine = BatchScenarioEngine(schedule, algorithm)
        with pytest.raises(SimulationError, match="detection"):
            fault_tolerance_certificate(
                schedule,
                algorithm,
                detection=DetectionPolicy.TIMEOUT_ARRAY,
                engine=engine,
            )

    def test_engine_schedule_mismatch_rejected(self):
        schedule, algorithm = corpus_schedule(0, 1)
        other_schedule, other_algorithm = corpus_schedule(1, 1)
        engine = BatchScenarioEngine(other_schedule, other_algorithm)
        with pytest.raises(SimulationError, match="different schedule"):
            fault_tolerance_certificate(schedule, algorithm, engine=engine)


class TestFailureScenarioIdentity:
    def test_signature_is_memoized(self):
        scenario = FailureScenario.crashes(("P1", "P2"), at=3.0)
        first = scenario.signature()
        assert scenario.signature() is first

    def test_equality_and_hash_by_content(self):
        one = FailureScenario.crashes(("P2", "P1"), at=3.0)
        two = FailureScenario.crashes(("P1", "P2"), at=3.0)
        assert one == two
        assert hash(one) == hash(two)
        assert one != FailureScenario.crashes(("P1", "P2"), at=4.0)
        assert len({one, two}) == 1

    def test_permanent_crash_set_detection(self):
        crash = FailureScenario.crashes(("P1", "P3"), at=2.0)
        assert crash.permanent_crash_set() == (("P1", "P3"), 2.0)
        assert crash.permanent_crash_set() is crash.permanent_crash_set()
        assert FailureScenario.none().permanent_crash_set() is None
        assert (
            FailureScenario.intermittent("P1", 0.0, 5.0).permanent_crash_set()
            is None
        )
        assert FailureScenario.link_down("L1").permanent_crash_set() is None
        mixed = FailureScenario(
            [ProcessorFailure("P1", 0.0), ProcessorFailure("P2", 1.0)]
        )
        assert mixed.permanent_crash_set() is None

    def test_compiled_missing_operation_rejected(self):
        schedule, _ = corpus_schedule(0, 1)
        bigger = from_dependencies([("A", "B"), ("A", "Z")])
        with pytest.raises(SimulationError, match="not in the"):
            CompiledSchedule(schedule, bigger)

    def test_truncated_trace_refuses_reconstruction(self):
        schedule, algorithm = corpus_schedule(0, 1)
        compiled = CompiledSchedule(schedule, algorithm)
        state = compiled.replay(verdict_only=True)
        assert state.truncated
        with pytest.raises(SimulationError, match="truncated"):
            state.to_trace(compiled)
