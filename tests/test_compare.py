"""Tests for the schedule diff utility."""

import pytest

from repro.analysis.compare import diff_schedules, format_schedule_diff
from repro.core.ftbar import schedule_ftbar
from repro.core.options import SchedulerOptions
from repro.graphs.builder import diamond, linear_chain
from repro.schedule.schedule import Schedule

from tests.util import uniform_problem


def tiny_schedule(host_of_b: str = "P2", start_of_a: float = 0.0) -> Schedule:
    schedule = Schedule(processors=["P1", "P2", "P3"], links=[], npf=0)
    schedule.place_operation("A", "P1", start_of_a, 1.0)
    schedule.place_operation("B", host_of_b, 2.0, 1.0)
    return schedule


class TestDiff:
    def test_identical_schedules(self):
        diff = diff_schedules(tiny_schedule(), tiny_schedule())
        assert diff.identical
        assert format_schedule_diff(diff) == "schedules identical"

    def test_moved_operation_detected(self):
        diff = diff_schedules(tiny_schedule("P2"), tiny_schedule("P3"))
        assert diff.added_hosts == {"B": ("P3",)}
        assert diff.removed_hosts == {"B": ("P2",)}
        assert not diff.retimed

    def test_retiming_detected(self):
        diff = diff_schedules(
            tiny_schedule(start_of_a=0.0), tiny_schedule(start_of_a=0.5)
        )
        assert diff.retimed == {"A": pytest.approx(0.5)}
        assert not diff.added_hosts

    def test_makespan_delta(self):
        before = tiny_schedule()
        after = tiny_schedule()
        after.place_operation("C", "P3", 0.0, 9.0)
        diff = diff_schedules(before, after)
        assert diff.makespan_delta == pytest.approx(6.0)
        assert diff.added_hosts == {"C": ("P3",)}

    def test_replica_and_comm_counters(self):
        before = Schedule(processors=["P1", "P2"], links=["L"], npf=1)
        before.place_operation("A", "P1", 0.0, 1.0)
        after = Schedule(processors=["P1", "P2"], links=["L"], npf=1)
        after.place_operation("A", "P1", 0.0, 1.0)
        after.place_operation("A", "P2", 0.0, 1.0)
        after.place_comm("A", "B", 0, 0, "L", 1.0, 0.5, "P1", "P2")
        diff = diff_schedules(before, after)
        assert (diff.replicas_before, diff.replicas_after) == (1, 2)
        assert (diff.comms_before, diff.comms_after) == (0, 1)


class TestRealSchedules:
    def duplication_sensitive_problem(self):
        # B is pinned away from A's processor, so without duplication an
        # expensive comm is needed; with duplication A is recomputed on
        # B's processor instead.
        problem = uniform_problem(linear_chain(2), processors=2, npf=0,
                                  comm_time=5.0)
        problem.exec_times.forbid("T1", "P1")
        return problem

    def test_duplication_ablation_diff(self):
        problem = self.duplication_sensitive_problem()
        with_dup = schedule_ftbar(problem)
        without = schedule_ftbar(problem, SchedulerOptions(duplication=False))
        diff = diff_schedules(without.schedule, with_dup.schedule)
        # Duplication adds a replica of T0 on P2 and removes the comm.
        assert diff.replicas_after > diff.replicas_before
        assert diff.comms_after < diff.comms_before
        assert diff.makespan_delta < 0  # duplication shortens it
        assert diff.added_hosts == {"T0": ("P2",)}

    def test_format_lists_changes(self):
        problem = self.duplication_sensitive_problem()
        with_dup = schedule_ftbar(problem)
        without = schedule_ftbar(problem, SchedulerOptions(duplication=False))
        text = format_schedule_diff(
            diff_schedules(without.schedule, with_dup.schedule)
        )
        assert "makespan" in text
        assert "+ T0 now also on P2" in text
