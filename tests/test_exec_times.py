"""Unit tests for the execution-time table (Exe / Dis)."""

import math

import pytest

from repro.exceptions import TimingError
from repro.timing.exec_times import FORBIDDEN, ExecutionTimes


class TestConstruction:
    def test_set_and_get(self):
        table = ExecutionTimes()
        table.set("A", "P1", 2.0)
        assert table.time_of("A", "P1") == 2.0

    def test_constructor_entries(self):
        table = ExecutionTimes({("A", "P1"): 1.0, ("A", "P2"): FORBIDDEN})
        assert table.time_of("A", "P1") == 1.0
        assert math.isinf(table.time_of("A", "P2"))

    def test_zero_duration_rejected(self):
        with pytest.raises(TimingError, match="positive"):
            ExecutionTimes().set("A", "P1", 0.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(TimingError, match="positive"):
            ExecutionTimes().set("A", "P1", -1.0)

    def test_inf_means_forbidden(self):
        table = ExecutionTimes()
        table.set("A", "P1", FORBIDDEN)
        assert not table.is_allowed("A", "P1")

    def test_forbid_helper(self):
        table = ExecutionTimes()
        table.forbid("A", "P1")
        assert not table.is_allowed("A", "P1")
        assert table.has_entry("A", "P1")

    def test_overwrite_allowed(self):
        table = ExecutionTimes()
        table.set("A", "P1", 2.0)
        table.set("A", "P1", 3.0)
        assert table.time_of("A", "P1") == 3.0


class TestQueries:
    def make(self) -> ExecutionTimes:
        return ExecutionTimes(
            {
                ("A", "P1"): 2.0,
                ("A", "P2"): 4.0,
                ("A", "P3"): FORBIDDEN,
                ("B", "P1"): 1.0,
                ("B", "P2"): 1.0,
                ("B", "P3"): 1.0,
            }
        )

    def test_missing_entry_raises(self):
        with pytest.raises(TimingError, match="no execution time"):
            self.make().time_of("Z", "P1")

    def test_allowed_processors_sorted_and_filtered(self):
        table = self.make()
        assert table.allowed_processors("A", ["P3", "P2", "P1"]) == ("P1", "P2")

    def test_average_over_allowed_only(self):
        table = self.make()
        assert table.average("A", ["P1", "P2", "P3"]) == pytest.approx(3.0)

    def test_average_forbidden_everywhere(self):
        table = ExecutionTimes({("A", "P1"): FORBIDDEN})
        with pytest.raises(TimingError, match="forbidden everywhere"):
            table.average("A", ["P1"])

    def test_operations_listing(self):
        assert self.make().operations() == ("A", "B")

    def test_entries_snapshot_is_a_copy(self):
        table = self.make()
        snapshot = table.entries()
        snapshot[("A", "P1")] = 99.0
        assert table.time_of("A", "P1") == 2.0

    def test_copy_independent(self):
        table = self.make()
        clone = table.copy()
        clone.set("A", "P1", 9.0)
        assert table.time_of("A", "P1") == 2.0

    def test_len(self):
        assert len(self.make()) == 6


class TestConstructors:
    def test_uniform(self):
        table = ExecutionTimes.uniform(["A", "B"], ["P1", "P2"], 3.0)
        assert len(table) == 4
        assert table.time_of("B", "P2") == 3.0

    def test_from_rows(self):
        table = ExecutionTimes.from_rows(
            ("P1", "P2"), {"A": (1.0, 2.0), "B": (3.0, FORBIDDEN)}
        )
        assert table.time_of("A", "P2") == 2.0
        assert not table.is_allowed("B", "P2")

    def test_from_rows_length_mismatch(self):
        with pytest.raises(TimingError, match="expected 2"):
            ExecutionTimes.from_rows(("P1", "P2"), {"A": (1.0,)})


class TestValidation:
    def test_complete_table_passes(self):
        table = ExecutionTimes.uniform(["A"], ["P1", "P2"], 1.0)
        table.validate_against(["A"], ["P1", "P2"])

    def test_missing_pair_fails(self):
        table = ExecutionTimes({("A", "P1"): 1.0})
        with pytest.raises(TimingError, match="missing execution time"):
            table.validate_against(["A"], ["P1", "P2"])

    def test_everywhere_forbidden_fails(self):
        table = ExecutionTimes({("A", "P1"): FORBIDDEN})
        with pytest.raises(TimingError, match="forbidden everywhere"):
            table.validate_against(["A"], ["P1"])
