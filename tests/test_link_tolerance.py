"""End-to-end tests of Npl+1 disjoint-route comm replication.

Covers the acceptance criteria of the unified resource-failure model:

* ``npl = 0`` is bit-identical to the paper-era engine (no ``npl`` /
  ``route`` keys in serialized documents, same schedules from the
  incremental and legacy paths — the golden corpus of
  ``test_engine_equivalence.py`` pins the rest);
* ``npl >= 1`` schedules place every inter-processor transfer on
  ``Npl + 1`` pairwise link-disjoint routes and pass the independent
  structural validator;
* the batched certifier proves combined masking — every subset of
  ≤ ``Npf`` processor crashes and ≤ ``Npl`` link failures — on ring,
  (reinforced) star and fully-connected topologies, bit-identically to
  the legacy per-scenario engine;
* infeasible hypotheses (a plain star at ``npl = 1``) fail with a clear
  error naming the achievable bound.
"""

import itertools

import pytest

from repro.analysis.reliability import (
    fault_tolerance_certificate,
    schedule_reliability,
)
from repro.campaign.jobs import build_problem
from repro.campaign.spec import WorkloadSpec
from repro.core.ftbar import schedule_ftbar
from repro.core.options import SchedulerOptions
from repro.exceptions import ArchitectureError
from repro.graphs.builder import diamond, fork_join
from repro.hardware.architecture import Architecture
from repro.hardware.link import Link
from repro.hardware.topologies import fully_connected, ring, star
from repro.problem import ProblemSpec
from repro.schedule.serialization import (
    problem_content_hash,
    problem_from_dict,
    problem_to_dict,
    schedule_content_hash,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.schedule.validation import validate_schedule
from repro.simulation.batch import BatchScenarioEngine
from repro.simulation.executor import ScheduleSimulator, simulate
from repro.simulation.failures import FailureScenario
from repro.simulation.trace import EventStatus
from repro.timing.comm_times import CommunicationTimes
from repro.timing.exec_times import ExecutionTimes


def _uniform(algorithm, architecture, npf=0, npl=0, exec_time=1.0, comm=0.5):
    return ProblemSpec(
        algorithm=algorithm,
        architecture=architecture,
        exec_times=ExecutionTimes.uniform(
            algorithm.operation_names(), architecture.processor_names(), exec_time
        ),
        comm_times=CommunicationTimes.uniform(
            algorithm.dependencies(), architecture.link_names(), comm
        ),
        npf=npf,
        npl=npl,
        name="link-tolerance-test",
    )


def _reinforced_star(count):
    """A star with doubled spokes: Menger bound 2 between any pair."""
    arc = Architecture("reinforced-star")
    names = [f"P{i + 1}" for i in range(count)]
    for name in names:
        arc.add_processor(name)
    for leaf in names[1:]:
        arc.add_link(Link.between(f"LA.{names[0]}.{leaf}", names[0], leaf))
        arc.add_link(Link.between(f"LB.{names[0]}.{leaf}", names[0], leaf))
    return arc


def _assert_combined_masking(problem, crash_times=(0.0,)):
    """Certify every (≤ npf, ≤ npl) combined subset through both engines."""
    result = schedule_ftbar(problem)
    schedule, algorithm = result.schedule, result.expanded_algorithm
    report = validate_schedule(
        schedule, algorithm, problem.architecture,
        # The scheduler expands memories; these workloads have none, so
        # the problem tables apply directly.
        problem.exec_times, problem.comm_times,
    )
    assert report.ok, str(report)
    engine = BatchScenarioEngine(schedule, algorithm)
    simulator = ScheduleSimulator(schedule, algorithm)
    processors, links = schedule.processor_names(), schedule.link_names()
    for n_procs in range(problem.npf + 1):
        for n_links in range(problem.npl + 1):
            for procs in itertools.combinations(processors, n_procs):
                for broken in itertools.combinations(links, n_links):
                    batched = engine.crash_subset_masked(
                        procs, crash_times, links=broken
                    )
                    legacy = all(
                        simulator.run(
                            FailureScenario.resource_crashes(procs, broken, at)
                        ).all_operations_delivered(algorithm)
                        for at in crash_times
                    )
                    assert batched == legacy, (procs, broken)
                    assert batched, f"not masked: {procs} + links {broken}"
    return result


class TestNplZeroBitIdentity:
    def test_documents_carry_no_new_keys(self):
        problem = _uniform(diamond(), fully_connected(3), npf=1)
        result = schedule_ftbar(problem)
        document = schedule_to_dict(result.schedule)
        assert "npl" not in document
        assert all("route" not in comm for comm in document["comms"])
        assert "npl" not in problem_to_dict(problem)

    def test_content_hashes_unchanged_at_npl_zero(self):
        problem = _uniform(diamond(), fully_connected(3), npf=1)
        document = problem_to_dict(problem)
        # The npl = 0 document is exactly the pre-link-tolerance one, so
        # its hash (and every campaign cache entry keyed by it) is too.
        rebuilt = problem_from_dict(document)
        assert rebuilt.npl == 0
        assert problem_content_hash(rebuilt) == problem_content_hash(problem)

    def test_npl_changes_problem_and_schedule_hashes(self):
        plain = _uniform(diamond(), fully_connected(3), npf=1, npl=0)
        tolerant = _uniform(diamond(), fully_connected(3), npf=1, npl=1)
        assert problem_content_hash(plain) != problem_content_hash(tolerant)
        assert schedule_content_hash(
            schedule_ftbar(plain).schedule
        ) != schedule_content_hash(schedule_ftbar(tolerant).schedule)

    def test_options_npl_none_keeps_problem_value(self):
        problem = _uniform(diamond(), fully_connected(3), npf=1, npl=1)
        result = schedule_ftbar(problem, SchedulerOptions())
        assert result.schedule.npl == 1


class TestNplScheduling:
    def test_route_copies_are_link_disjoint_in_the_schedule(self):
        problem = build_problem(
            WorkloadSpec(family="random", size=12),
            "fully_connected", 4, 1, 0.5, 0, npl=1,
        )
        result = schedule_ftbar(problem)
        chains: dict[tuple, set[str]] = {}
        for comm in result.schedule.all_comms():
            key = (
                comm.source, comm.target,
                comm.source_replica, comm.target_replica,
            )
            chains.setdefault(key, set())
        routes: dict[tuple, dict[int, set[str]]] = {}
        for comm in result.schedule.all_comms():
            key = (
                comm.source, comm.target,
                comm.source_replica, comm.target_replica,
            )
            routes.setdefault(key, {}).setdefault(comm.route, set()).add(comm.link)
        assert result.schedule.comm_count() > 0
        for key, by_route in routes.items():
            assert set(by_route) == {0, 1}, f"{key} missing a route copy"
            assert not (by_route[0] & by_route[1]), f"{key} routes share a link"

    def test_options_override_enables_replication(self):
        problem = _uniform(fork_join(3), fully_connected(4), npf=1, npl=0)
        result = schedule_ftbar(
            problem, SchedulerOptions(duplication=False, npl=1)
        )
        assert result.schedule.npl == 1
        assert any(c.route == 1 for c in result.schedule.all_comms())

    def test_incremental_and_legacy_engines_identical_at_npl_one(self):
        for seed in (0, 1):
            problem = build_problem(
                WorkloadSpec(family="random", size=12),
                "fully_connected", 4, 1, 0.5, seed, npl=1,
            )
            fast = schedule_ftbar(problem, SchedulerOptions(incremental=True))
            slow = schedule_ftbar(problem, SchedulerOptions(incremental=False))
            assert schedule_to_dict(fast.schedule) == schedule_to_dict(slow.schedule)

    def test_schedule_round_trips_with_routes(self):
        problem = build_problem(
            WorkloadSpec(family="random", size=10), "ring", 4, 0, 0.3, 0, npl=1,
        )
        schedule = schedule_ftbar(problem).schedule
        document = schedule_to_dict(schedule)
        assert document["npl"] == 1
        assert any(comm.get("route") == 1 for comm in document["comms"])
        rebuilt = schedule_from_dict(document)
        assert schedule_to_dict(rebuilt) == document
        assert rebuilt.npl == 1

    def test_star_npl_one_is_rejected_with_a_clear_error(self):
        problem = _uniform(diamond(), star(4), npf=0, npl=1)
        with pytest.raises(ArchitectureError, match="only 1 link-disjoint"):
            problem.validate()
        with pytest.raises(ArchitectureError, match="Npl"):
            schedule_ftbar(problem)

    def test_negative_npl_rejected(self):
        from repro.exceptions import SchedulingError

        with pytest.raises(SchedulingError, match="npl"):
            _uniform(diamond(), fully_connected(3), npl=-1)


class TestCombinedCertification:
    """The joint (≤ Npf crashes, ≤ Npl broken links) masking guarantee."""

    def test_fully_connected_combined_npf1_npl1(self):
        for seed in (0, 1, 2):
            problem = build_problem(
                WorkloadSpec(family="random", size=12),
                "fully_connected", 4, 1, 0.5, seed, npl=1,
            )
            result = _assert_combined_masking(problem, crash_times=(0.0, 3.0))
            assert result.schedule.comm_count() > 0 or seed != 0

    def test_ring_link_tolerance_npl1(self):
        for seed in (0, 1):
            problem = build_problem(
                WorkloadSpec(family="random", size=10),
                "ring", 4, 0, 0.3, seed, npl=1,
            )
            result = _assert_combined_masking(problem, crash_times=(0.0, 5.0))
            if seed == 0:
                assert result.schedule.comm_count() > 0

    def test_ring_combined_npf1_npl1_colocated(self):
        # With load-bearing cross-processor comms a 4-ring cannot mask
        # one crash plus one link failure (the pair saturates its Menger
        # bound and isolates a processor); co-location-heavy schedules
        # still certify, which is exactly what the certifier proves.
        problem = _uniform(fork_join(3), ring(4), npf=1, npl=1, comm=2.0)
        _assert_combined_masking(problem)

    def test_reinforced_star_link_tolerance(self):
        problem = _uniform(
            fork_join(3), _reinforced_star(4), npf=0, npl=1, comm=0.4
        )
        result = _assert_combined_masking(problem)
        assert result.schedule.comm_count() > 0

    def test_single_link_failure_is_survived_by_the_backup_route(self):
        problem = build_problem(
            WorkloadSpec(family="random", size=10), "ring", 4, 0, 0.3, 0, npl=1,
        )
        result = schedule_ftbar(problem)
        schedule, algorithm = result.schedule, result.expanded_algorithm
        lost_somewhere = False
        for link in schedule.link_names():
            trace = simulate(
                schedule, algorithm, FailureScenario.link_down(link, at=0.0)
            )
            assert trace.all_operations_delivered(algorithm)
            lost_somewhere |= any(
                c.status is EventStatus.LOST for c in trace.comms
            )
        assert lost_somewhere  # the failure really suppressed copies


class TestCombinedCertificateApi:
    def test_certificate_reports_joint_levels_and_verdict(self):
        problem = build_problem(
            WorkloadSpec(family="random", size=12),
            "fully_connected", 4, 1, 0.5, 0, npl=1,
        )
        result = schedule_ftbar(problem)
        certificate = fault_tolerance_certificate(
            result.schedule, result.expanded_algorithm
        )
        assert certificate.npl == 1
        assert certificate.certified
        level = certificate.level(1, link_failures=1)
        assert level.fully_masked
        assert level.total_subsets == 4 * 6  # C(4,1) procs x C(6,1) links
        assert certificate.level(0, link_failures=0).total_subsets == 1
        with pytest.raises(KeyError):
            certificate.level(0, link_failures=9)

    def test_breaking_combined_subsets_are_reported(self):
        problem = build_problem(
            WorkloadSpec(family="random", size=10), "ring", 4, 1, 0.2, 0, npl=1,
        )
        result = schedule_ftbar(problem)
        certificate = fault_tolerance_certificate(
            result.schedule, result.expanded_algorithm
        )
        assert not certificate.certified
        assert certificate.breaking_combined
        procs, links = certificate.breaking_combined[0]
        assert links  # the link component is what broke it
        assert "link" in str(certificate)

    def test_certificate_batched_matches_legacy_combined(self):
        problem = build_problem(
            WorkloadSpec(family="random", size=10), "ring", 4, 1, 0.3, 1, npl=1,
        )
        result = schedule_ftbar(problem)
        schedule, algorithm = result.schedule, result.expanded_algorithm
        batched = fault_tolerance_certificate(schedule, algorithm)
        legacy = fault_tolerance_certificate(schedule, algorithm, batched=False)
        assert [
            (l.failures, l.link_failures, l.masked_subsets, l.total_subsets)
            for l in batched.levels
        ] == [
            (l.failures, l.link_failures, l.masked_subsets, l.total_subsets)
            for l in legacy.levels
        ]
        assert batched.breaking_subsets == legacy.breaking_subsets
        assert batched.breaking_combined == legacy.breaking_combined
        assert batched.certified == legacy.certified

    def test_capped_link_bound_weakens_the_verified_hypothesis(self):
        # --links 0 on an npl=1 schedule enumerates no link scenarios:
        # the certificate must not claim the npl=1 promise vacuously.
        problem = build_problem(
            WorkloadSpec(family="random", size=10), "ring", 4, 0, 0.3, 0, npl=1,
        )
        result = schedule_ftbar(problem)
        capped = fault_tolerance_certificate(
            result.schedule, result.expanded_algorithm, max_link_failures=0
        )
        assert capped.npl == 0
        assert "npl=1" not in str(capped)
        full = fault_tolerance_certificate(
            result.schedule, result.expanded_algorithm
        )
        assert full.npl == 1

    def test_npl_zero_certificate_shape_is_unchanged(self):
        problem = _uniform(diamond(), fully_connected(3), npf=1)
        result = schedule_ftbar(problem)
        certificate = fault_tolerance_certificate(
            result.schedule, result.expanded_algorithm
        )
        assert certificate.npl == 0
        assert [level.link_failures for level in certificate.levels] == [0, 0, 0]
        assert "npl" not in str(certificate)


class TestLinkReliability:
    def test_link_probabilities_extend_the_sum(self):
        problem = build_problem(
            WorkloadSpec(family="random", size=10), "ring", 4, 0, 0.3, 0, npl=1,
        )
        result = schedule_ftbar(problem)
        schedule, algorithm = result.schedule, result.expanded_algorithm
        probabilities = {p: 0.02 for p in schedule.processor_names()}
        link_probabilities = {l: 0.05 for l in schedule.link_names()}
        combined = schedule_reliability(
            schedule, algorithm, probabilities,
            link_failure_probabilities=link_probabilities,
        )
        legacy = schedule_reliability(
            schedule, algorithm, probabilities,
            link_failure_probabilities=link_probabilities, batched=False,
        )
        assert combined.reliability == legacy.reliability
        assert combined.masked_probability_mass == legacy.masked_probability_mass
        assert combined.evaluated_subsets == 2 ** 4 * 2 ** 4
        # Certified npl=1 schedule: reliability covers at least the
        # guaranteed (≤ npf crashes, ≤ npl links) probability mass.
        assert combined.reliability >= combined.guaranteed_lower_bound

    def test_none_keeps_the_processor_only_sum(self):
        problem = _uniform(diamond(), fully_connected(3), npf=1)
        result = schedule_ftbar(problem)
        schedule, algorithm = result.schedule, result.expanded_algorithm
        probabilities = {p: 0.1 for p in schedule.processor_names()}
        with_links_off = schedule_reliability(schedule, algorithm, probabilities)
        assert with_links_off.evaluated_subsets == 2 ** 3
