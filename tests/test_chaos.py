"""The chaos harness and its end-to-end robustness pins.

The acceptance property of the fault-injection PR: a campaign attacked
by a deterministic injection plan — torn writes, ENOSPC, heartbeat
death, killed merges — produces a merged store **byte-identical** to a
clean serial run, and replaying the same plan and seed injects the
exact same fault set at any worker count.
"""

import json
import multiprocessing

import pytest

from repro.campaign import (
    CampaignSpec,
    DirectoryCampaign,
    ResultStore,
    WorkloadSpec,
    expand_jobs,
    merge_stores,
    save_campaign,
    worker_loop,
)
from repro.cli import main
from repro.faultinject import configure, deconfigure, plan_from_dict
from repro.faultinject.chaos import _chaos_merge, run_chaos


@pytest.fixture(autouse=True)
def injection_off():
    deconfigure()
    yield
    deconfigure()


def tiny_spec(**overrides) -> CampaignSpec:
    """Four fast jobs: two tree families x two processor counts."""
    values = dict(
        name="chaos-tiny",
        workloads=(
            WorkloadSpec(family="in_tree", size=3),
            WorkloadSpec(family="out_tree", size=3),
        ),
        processors=(2, 3),
        seeds=(0,),
        measures=("ftbar",),
    )
    values.update(overrides)
    return CampaignSpec(**values)


def plan(*triggers, seed=7, name="test-plan"):
    return plan_from_dict(
        {"seed": seed, "name": name, "triggers": list(triggers)}
    )


TORN_PLAN = {
    "seed": 11,
    "name": "torn-and-flaky",
    "triggers": [
        {
            "site": "store.append.write",
            "action": "torn_write",
            "probability": 0.5,
        },
        {"site": "worker.execute", "action": "raise", "probability": 0.3},
        {"site": "store.append.write", "action": "corrupt",
         "probability": 0.2},
    ],
}


class TestChaosHarness:
    def test_empty_plan_is_a_clean_run(self, tmp_path):
        report = run_chaos(
            tiny_spec(),
            plan(name="noop"),
            workers=1,
            root=tmp_path / "chaos",
            lease_ttl_s=1.0,
            poll_s=0.02,
        )
        assert report.passed
        assert report.fired == []
        assert report.rounds_used == 1
        assert report.merge_rounds_used == 1
        assert report.recorded == report.jobs == 4

    def test_enospc_on_cache_costs_nothing(self, tmp_path):
        report = run_chaos(
            tiny_spec(),
            plan(
                {
                    "site": "cache.put.write",
                    "action": "raise",
                    "errno": "ENOSPC",
                    "probability": 1.0,
                },
                name="enospc",
            ),
            workers=1,
            root=tmp_path / "chaos",
            lease_ttl_s=1.0,
            poll_s=0.02,
        )
        assert report.passed
        assert report.fired_by_site() == {"cache.put.write": 1}

    def test_replay_injects_identical_faults_at_any_worker_count(
        self, tmp_path
    ):
        # The acceptance pin: same plan, same seed, same campaign =>
        # the same keyed fault set, at 1 worker, again at 1 worker,
        # and at 2 workers — and every run's merged bytes still match
        # the clean serial reference.
        spec = tiny_spec()
        injection_plan = plan_from_dict(TORN_PLAN)
        signatures = []
        for index, workers in enumerate((1, 1, 2)):
            report = run_chaos(
                spec,
                injection_plan,
                workers=workers,
                root=tmp_path / f"chaos-{index}",
                lease_ttl_s=1.0,
                poll_s=0.02,
            )
            assert report.passed, report.summary()
            signatures.append(report.fault_signature())
        assert signatures[0], "the plan fired nothing — a vacuous pin"
        assert signatures[0] == signatures[1] == signatures[2]

    def test_kill_mid_merge_recovers_on_next_attempt(self, tmp_path):
        report = run_chaos(
            tiny_spec(),
            plan(
                {
                    "site": "merge.replace",
                    "action": "kill",
                    "worker": "merge-0",
                    "nth": 1,
                },
                name="kill-merge",
            ),
            workers=1,
            root=tmp_path / "chaos",
            lease_ttl_s=1.0,
            poll_s=0.02,
        )
        assert report.passed
        assert report.merge_rounds_used == 2
        assert report.fired_by_site() == {"merge.replace": 1}

    def test_canned_plans_ship_and_validate(self):
        from repro.faultinject import load_plan

        enospc = load_plan("examples/chaos_enospc.json")
        assert enospc.sites() == {"cache.put.write"}
        kill = load_plan("examples/chaos_kill_merge.json")
        assert {t.action for t in kill.triggers} == {"kill", "torn_write"}


class TestMergeAtomicity:
    """A killed merge leaves the old store or the new — never torn."""

    def _shards(self, tmp_path):
        shards = tmp_path / "shards"
        first = ResultStore(shards / "a.jsonl")
        second = ResultStore(shards / "b.jsonl")
        for index in range(2):
            first.append(f"aa{index:02d}", {"value": index})
            second.append(f"bb{index:02d}", {"value": 10 + index})
        return shards, first

    def test_kill_between_write_and_replace_preserves_old_bytes(
        self, tmp_path
    ):
        shards, first = self._shards(tmp_path)
        output = tmp_path / "merged.jsonl"
        merge_stores([first.path], output)
        old_bytes = output.read_bytes()

        kill_plan = {
            "seed": 7,
            "triggers": [
                {
                    "site": "merge.replace",
                    "action": "kill",
                    "worker": "merge-0",
                    "nth": 1,
                }
            ],
        }
        process = multiprocessing.Process(
            target=_chaos_merge,
            args=(
                str(shards),
                str(output),
                kill_plan,
                7,
                "merge-0",
                str(tmp_path / "faults.jsonl"),
            ),
        )
        process.start()
        process.join(60)
        assert process.exitcode == 86  # the injected kill, not a crash

        # Old bytes exactly: the rename never happened, and the torn
        # temp file was left beside the store, not glued into it.
        assert output.read_bytes() == old_bytes
        for line in output.read_text().splitlines():
            json.loads(line)

        # Idempotent re-merge (a different identity dodges the kill
        # trigger) recovers the full union.
        process = multiprocessing.Process(
            target=_chaos_merge,
            args=(
                str(shards),
                str(output),
                kill_plan,
                7,
                "merge-1",
                str(tmp_path / "faults.jsonl"),
            ),
        )
        process.start()
        process.join(60)
        assert process.exitcode == 0
        digests = [
            json.loads(line)["digest"]
            for line in output.read_text().splitlines()
        ]
        assert digests == sorted(digests)
        assert set(digests) == {"aa00", "aa01", "bb00", "bb01"}


class TestHeartbeatDeath:
    """A dead heartbeat thread means abandon, never a duplicate record."""

    def test_worker_abandons_then_recovers_without_duplicates(
        self, tmp_path
    ):
        spec = tiny_spec(
            workloads=(WorkloadSpec(family="in_tree", size=3),),
            processors=(2,),
        )
        campaign = DirectoryCampaign.initialize(spec, tmp_path / "campaign")
        (digest,) = {job.digest for job in expand_jobs(spec)}
        configure(
            plan_from_dict(
                {
                    "seed": 5,
                    "triggers": [
                        # The first beat kills the heartbeat *thread*
                        # (a non-OSError escaping it), while the job is
                        # held long enough for that beat to land.
                        {
                            "site": "directory.heartbeat.renew",
                            "action": "raise",
                            "exception": "RuntimeError",
                            "nth": 1,
                        },
                        {
                            "site": "worker.execute",
                            "action": "sleep",
                            "seconds": 0.5,
                            "probability": 1.0,
                        },
                    ],
                }
            )
        )
        report = worker_loop(
            campaign.root,
            worker="hb-victim",
            lease_ttl_s=0.4,
            poll_s=0.02,
        )
        # First attempt: heartbeat died => the worker aborted before
        # recording (but after caching the computed document).  Second
        # attempt ran clean, served from cache.  One record either way.
        assert report.lost_leases == 1
        assert report.completed == 1
        shard = campaign.shard_for("hb-victim")
        assert [line["digest"] for line in shard.records()] == [digest]
        (lease_lost,) = [
            event
            for event in shard.events()
            if event["event"] == "lease_lost"
        ]
        assert lease_lost["job"] == digest
        assert "heartbeat thread died" in lease_lost["reason"]
        assert campaign.recorded_digests() == {digest}


class TestOwnershipAwareRelease:
    def test_victim_cannot_unlink_a_stealers_claim(self, tmp_path):
        campaign = DirectoryCampaign(tmp_path / "campaign")
        campaign.claims_dir.mkdir(parents=True)
        digest = "ab" + "0" * 62
        assert campaign.try_claim(digest, "victim")
        # The lease is stolen: the stealer drops the stale claim and
        # re-creates it under its own identity.
        campaign.release(digest)
        assert campaign.try_claim(digest, "stealer", attempt=2)
        # The victim's exit path must not free the job a third time.
        campaign.release(digest, owner="victim")
        assert campaign.read_claim(digest)["worker"] == "stealer"
        campaign.release(digest, owner="stealer")
        assert campaign.read_claim(digest) is None


class TestChaosCLI:
    def test_sites_catalog(self, capsys):
        assert main(["chaos", "sites"]) == 0
        out = capsys.readouterr().out
        assert "store.append.write" in out
        assert "merge.replace" in out

    def test_run_reports_byte_identical(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        save_campaign(
            tiny_spec(
                workloads=(WorkloadSpec(family="in_tree", size=3),),
                processors=(2,),
            ),
            spec_path,
        )
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(
            json.dumps(
                {
                    "seed": 3,
                    "name": "cli-smoke",
                    "triggers": [
                        {
                            "site": "store.append.write",
                            "action": "torn_write",
                            "probability": 0.9,
                        }
                    ],
                }
            )
        )
        code = main(
            [
                "chaos",
                "run",
                str(spec_path),
                "--plan",
                str(plan_path),
                "--workers",
                "1",
                "--lease-ttl",
                "1.0",
                "--dir",
                str(tmp_path / "scratch"),
                "--json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        report = json.loads(out[out.index("{"):])
        assert report["passed"] is True
        assert report["identical"] is True
