"""Cross-module integration tests: schedule -> validate -> simulate."""

import pytest

from repro.analysis.metrics import degraded_lengths, overhead_percent
from repro.baselines.hbp import schedule_hbp
from repro.baselines.list_scheduler import schedule_non_fault_tolerant
from repro.core.ftbar import schedule_ftbar
from repro.core.options import SchedulerOptions
from repro.graphs.builder import fork_join, layered
from repro.hardware.topologies import single_bus
from repro.schedule.validation import validate_schedule
from repro.simulation.executor import DetectionPolicy, simulate
from repro.simulation.failures import FailureScenario, ProcessorFailure
from repro.timing.comm_times import CommunicationTimes
from repro.timing.exec_times import ExecutionTimes
from repro.problem import ProblemSpec
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem

from tests.util import uniform_problem


class TestFullPipeline:
    def test_schedule_validate_simulate_roundtrip(self):
        problem = generate_problem(
            RandomWorkloadConfig(operations=25, ccr=2.0, npf=1, seed=123)
        )
        result = schedule_ftbar(problem)
        report = validate_schedule(
            result.schedule,
            result.expanded_algorithm,
            problem.architecture,
            problem.exec_times,
            problem.comm_times,
        )
        assert report.ok, str(report)
        lengths = degraded_lengths(result.schedule, result.expanded_algorithm)
        assert set(lengths) == set(problem.architecture.processor_names())

    def test_ftbar_vs_hbp_on_same_problem(self):
        problem = generate_problem(
            RandomWorkloadConfig(operations=30, ccr=5.0, npf=1, seed=77)
        )
        ftbar = schedule_ftbar(problem)
        hbp = schedule_hbp(problem)
        non_ft = schedule_non_fault_tolerant(problem)
        ftbar_overhead = overhead_percent(ftbar.makespan, non_ft.makespan)
        hbp_overhead = overhead_percent(hbp.makespan, non_ft.makespan)
        # At CCR=5 the paper's headline claim: FTBAR wins clearly.
        assert ftbar_overhead < hbp_overhead

    def test_two_failures_masked_with_npf2(self):
        problem = generate_problem(
            RandomWorkloadConfig(operations=12, ccr=1.0, processors=5,
                                 npf=2, seed=55)
        )
        result = schedule_ftbar(problem)
        algorithm = result.expanded_algorithm
        processors = problem.architecture.processor_names()
        for first in processors:
            for second in processors:
                if first >= second:
                    continue
                trace = simulate(
                    result.schedule,
                    algorithm,
                    FailureScenario.crashes([first, second]),
                )
                assert trace.all_operations_delivered(algorithm), (first, second)

    def test_intermittent_failure_with_both_detection_options(self):
        problem = generate_problem(
            RandomWorkloadConfig(operations=15, ccr=1.0, npf=1, seed=88)
        )
        result = schedule_ftbar(problem)
        algorithm = result.expanded_algorithm
        scenario = FailureScenario.intermittent("P1", 5.0, 15.0)
        for policy in (DetectionPolicy.NONE, DetectionPolicy.TIMEOUT_ARRAY):
            trace = simulate(result.schedule, algorithm, scenario, policy)
            assert trace.outputs_completion(algorithm) is not None, policy


class TestBusArchitecture:
    def bus_problem(self, npf: int = 1) -> ProblemSpec:
        algorithm = fork_join(3)
        architecture = single_bus(3)
        exec_times = ExecutionTimes.uniform(
            algorithm.operation_names(), architecture.processor_names(), 1.0
        )
        comm_times = CommunicationTimes.uniform(
            algorithm.dependencies(), architecture.link_names(), 0.5
        )
        return ProblemSpec(
            algorithm=algorithm,
            architecture=architecture,
            exec_times=exec_times,
            comm_times=comm_times,
            npf=npf,
            name="bus-problem",
        )

    def test_bus_schedule_serializes_comms(self):
        problem = self.bus_problem()
        result = schedule_ftbar(problem)
        comms = result.schedule.comms_on("BUS")
        for before, after in zip(comms, comms[1:]):
            assert before.end <= after.start + 1e-9

    def test_bus_single_crash_masked(self):
        problem = self.bus_problem()
        result = schedule_ftbar(problem)
        algorithm = result.expanded_algorithm
        for processor in problem.architecture.processor_names():
            trace = simulate(
                result.schedule, algorithm, FailureScenario.crash(processor)
            )
            assert trace.all_operations_delivered(algorithm)

    def test_bus_overhead_higher_than_point_to_point(self):
        # Section 4.4: on multi-point links the comm replication overhead
        # is higher because comms serialize on the single medium.
        bus = self.bus_problem()
        p2p = uniform_problem(fork_join(3), processors=3, npf=1, comm_time=0.5)
        bus_result = schedule_ftbar(bus)
        p2p_result = schedule_ftbar(p2p)
        assert bus_result.makespan >= p2p_result.makespan


class TestLargerWorkflow:
    def test_layered_graph_full_flow(self):
        problem = uniform_problem(
            layered([2, 3, 2]), processors=4, npf=1, comm_time=2.0
        )
        result = schedule_ftbar(problem)
        report = validate_schedule(
            result.schedule,
            result.expanded_algorithm,
            problem.architecture,
            problem.exec_times,
            problem.comm_times,
        )
        assert report.ok, str(report)
        trace = simulate(
            result.schedule,
            result.expanded_algorithm,
            FailureScenario([ProcessorFailure("P2", 1.0)]),
        )
        assert trace.all_operations_delivered(result.expanded_algorithm)

    def test_options_ablation_end_to_end(self):
        problem = generate_problem(
            RandomWorkloadConfig(operations=20, ccr=5.0, npf=1, seed=99)
        )
        paper = schedule_ftbar(problem, SchedulerOptions())
        no_dup = schedule_ftbar(problem, SchedulerOptions(duplication=False))
        assert paper.makespan <= no_dup.makespan
        assert no_dup.schedule.duplicated_count() == 0
