"""Smoke tests: the fast example scripts must run end to end.

The slower sweeps (autonomous_vehicle, random_exploration) are exercised
by the benchmarks; here we run the quick ones in-process and check their
key claims appear in the output.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

_EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", _EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestQuickstart:
    def test_runs_and_reports_paper_numbers(self, capsys):
        output = run_example("quickstart", capsys)
        assert "15.05" in output
        assert "schedule valid" in output
        assert "P1 crashes" in output


class TestStepByStep:
    def test_walkthrough_shows_selection(self, capsys):
        output = run_example("step_by_step", capsys)
        assert "=== step 1" in output
        assert "<- selected" in output
        assert "15.05" in output


class TestFlightControl:
    def test_registers_survive_crashes(self, capsys):
        output = run_example("avionics_flight_control", capsys)
        assert "register integrator" in output
        assert "registers stored" in output
        assert "LOST" not in output.split("single crashes")[1]
