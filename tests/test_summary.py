"""Tests for the one-call schedule audit (analysis.summary)."""

import pytest

from repro.analysis.summary import audit_schedule, format_schedule_report
from repro.core.ftbar import schedule_ftbar
from repro.graphs.builder import diamond
from repro.timing.constraints import RealTimeConstraints

from tests.util import uniform_problem


class TestAudit:
    def make_report(self, deadline=None):
        rtc = RealTimeConstraints(global_deadline=deadline) if deadline else None
        problem = uniform_problem(diamond(), processors=3, npf=1, rtc=rtc)
        return audit_schedule(schedule_ftbar(problem))

    def test_report_fields(self):
        report = self.make_report()
        assert report.npf == 1
        assert report.makespan > 0
        assert report.replication.operations == 4
        assert set(report.latencies) == {"D"}
        assert report.certificate.certified

    def test_healthy_when_rtc_holds_and_certified(self):
        assert self.make_report(deadline=1000.0).healthy

    def test_unhealthy_when_rtc_missed(self):
        report = self.make_report(deadline=0.5)
        assert not report.rtc.satisfied
        assert not report.healthy

    def test_paper_example_report(self, paper_result):
        report = audit_schedule(paper_result)
        assert report.makespan == pytest.approx(15.05)
        assert report.healthy


class TestFormatting:
    def test_rendering_sections(self, paper_result):
        text = format_schedule_report(audit_schedule(paper_result))
        assert "processor load:" in text
        assert "link load:" in text
        assert "output latencies" in text
        assert "CERTIFIED" in text
        assert "verdict: HEALTHY" in text

    def test_unhealthy_verdict_rendered(self):
        problem = uniform_problem(
            diamond(),
            processors=3,
            npf=1,
            rtc=RealTimeConstraints(global_deadline=0.5),
        )
        text = format_schedule_report(audit_schedule(schedule_ftbar(problem)))
        assert "NEEDS ATTENTION" in text


class TestCli:
    def test_report_command(self, tmp_path, capsys):
        from repro.cli import main

        problem = tmp_path / "problem.json"
        main(["generate", str(problem), "--operations", "6", "--seed", "3",
              "--processors", "3"])
        capsys.readouterr()
        assert main(["report", str(problem)]) == 0
        output = capsys.readouterr().out
        assert "verdict: HEALTHY" in output
