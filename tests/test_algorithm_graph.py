"""Unit tests for the data-flow graph model (repro.graphs.algorithm)."""

import pytest

from repro.exceptions import GraphError
from repro.graphs.algorithm import AlgorithmGraph, from_dependencies
from repro.graphs.operations import Operation, OperationKind


def diamond() -> AlgorithmGraph:
    return from_dependencies([("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")])


class TestConstruction:
    def test_add_operation_returns_stored_object(self):
        graph = AlgorithmGraph()
        op = graph.add_operation("A")
        assert op == Operation("A")
        assert "A" in graph

    def test_add_operation_idempotent(self):
        graph = AlgorithmGraph()
        graph.add_operation("A")
        graph.add_operation("A")
        assert len(graph) == 1

    def test_re_adding_with_other_kind_rejected(self):
        graph = AlgorithmGraph()
        graph.add_operation("A", OperationKind.COMPUTATION)
        with pytest.raises(GraphError, match="already exists"):
            graph.add_operation("A", OperationKind.MEMORY)

    def test_add_operation_accepts_operation_object(self):
        graph = AlgorithmGraph()
        graph.add_operation(Operation("M", OperationKind.MEMORY))
        assert graph.operation("M").is_memory()

    def test_dependency_requires_known_endpoints(self):
        graph = AlgorithmGraph()
        graph.add_operation("A")
        with pytest.raises(GraphError, match="unknown operation"):
            graph.add_dependency("A", "B")
        with pytest.raises(GraphError, match="unknown operation"):
            graph.add_dependency("Z", "A")

    def test_self_dependency_rejected(self):
        graph = AlgorithmGraph()
        graph.add_operation("A")
        with pytest.raises(GraphError, match="self dependency"):
            graph.add_dependency("A", "A")

    def test_non_positive_data_size_rejected(self):
        graph = AlgorithmGraph()
        graph.add_operation("A")
        graph.add_operation("B")
        with pytest.raises(GraphError, match="data_size"):
            graph.add_dependency("A", "B", data_size=0)

    def test_data_size_stored(self):
        graph = AlgorithmGraph()
        graph.add_operation("A")
        graph.add_operation("B")
        graph.add_dependency("A", "B", data_size=3.5)
        assert graph.data_size("A", "B") == 3.5

    def test_data_size_of_unknown_edge(self):
        with pytest.raises(GraphError, match="unknown dependency"):
            diamond().data_size("A", "D")


class TestQueries:
    def test_operation_names_sorted(self):
        graph = AlgorithmGraph()
        for name in ("C", "A", "B"):
            graph.add_operation(name)
        assert graph.operation_names() == ("A", "B", "C")

    def test_unknown_operation_raises(self):
        with pytest.raises(GraphError):
            AlgorithmGraph().operation("A")

    def test_predecessors_and_successors_sorted(self):
        graph = diamond()
        assert graph.predecessors("D") == ("B", "C")
        assert graph.successors("A") == ("B", "C")

    def test_predecessors_of_unknown_operation(self):
        with pytest.raises(GraphError):
            diamond().predecessors("Z")

    def test_sources_and_sinks(self):
        graph = diamond()
        assert graph.sources() == ("A",)
        assert graph.sinks() == ("D",)

    def test_has_dependency(self):
        graph = diamond()
        assert graph.has_dependency("A", "B")
        assert not graph.has_dependency("B", "A")

    def test_dependencies_sorted(self):
        assert diamond().dependencies() == (
            ("A", "B"),
            ("A", "C"),
            ("B", "D"),
            ("C", "D"),
        )

    def test_len_and_iter(self):
        graph = diamond()
        assert len(graph) == 4
        assert list(graph) == ["A", "B", "C", "D"]

    def test_number_of_dependencies(self):
        assert diamond().number_of_dependencies() == 4

    def test_descendants_and_ancestors(self):
        graph = diamond()
        assert graph.descendants("A") == {"B", "C", "D"}
        assert graph.ancestors("D") == {"A", "B", "C"}
        assert graph.descendants("D") == frozenset()


class TestStructure:
    def test_topological_order_respects_edges(self):
        graph = diamond()
        order = graph.topological_order()
        assert order.index("A") < order.index("B") < order.index("D")
        assert order.index("A") < order.index("C") < order.index("D")

    def test_topological_order_deterministic(self):
        assert diamond().topological_order() == diamond().topological_order()

    def test_topological_order_rejects_cycle(self):
        graph = from_dependencies([("A", "B"), ("B", "A")])
        with pytest.raises(GraphError, match="cycle"):
            graph.topological_order()

    def test_levels(self):
        assert dict(diamond().levels()) == {"A": 0, "B": 1, "C": 1, "D": 2}

    def test_heights(self):
        assert dict(diamond().heights()) == {"A": 2, "B": 1, "C": 1, "D": 0}

    def test_validate_empty_graph(self):
        with pytest.raises(GraphError, match="empty"):
            AlgorithmGraph().validate()

    def test_validate_accepts_dag(self):
        diamond().validate()

    def test_validate_rejects_combinational_cycle(self):
        graph = from_dependencies([("A", "B"), ("B", "A")])
        with pytest.raises(GraphError, match="combinational cycle"):
            graph.validate()

    def test_validate_accepts_cycle_through_memory(self):
        graph = AlgorithmGraph()
        graph.add_operation("M", OperationKind.MEMORY)
        graph.add_operation("A")
        graph.add_dependency("M", "A")
        graph.add_dependency("A", "M")
        graph.validate()


class TestMemoryExpansion:
    def build_register_loop(self) -> AlgorithmGraph:
        graph = AlgorithmGraph("loop")
        graph.add_operation("M", OperationKind.MEMORY)
        graph.add_operation("A")
        graph.add_dependency("M", "A", data_size=2.0)
        graph.add_dependency("A", "M", data_size=3.0)
        return graph

    def test_no_memory_returns_same_object(self):
        graph = diamond()
        expanded, pairs = graph.expand_memories()
        assert expanded is graph
        assert pairs == {}

    def test_expansion_splits_memory(self):
        expanded, pairs = self.build_register_loop().expand_memories()
        assert pairs == {"M": ("M#read", "M#write")}
        assert set(expanded.operation_names()) == {"A", "M#read", "M#write"}

    def test_expansion_breaks_cycle(self):
        expanded, _ = self.build_register_loop().expand_memories()
        assert expanded.is_acyclic()
        assert expanded.has_dependency("M#read", "A")
        assert expanded.has_dependency("A", "M#write")

    def test_expansion_preserves_data_sizes(self):
        expanded, _ = self.build_register_loop().expand_memories()
        assert expanded.data_size("M#read", "A") == 2.0
        assert expanded.data_size("A", "M#write") == 3.0

    def test_expansion_keeps_kinds(self):
        expanded, _ = self.build_register_loop().expand_memories()
        assert expanded.operation("M#read").is_memory()
        assert expanded.operation("M#write").is_memory()
        assert expanded.operation("A").is_computation()

    def test_memory_operations_listing(self):
        assert self.build_register_loop().memory_operations() == ("M",)


class TestCopyAndExport:
    def test_copy_is_independent(self):
        graph = diamond()
        clone = graph.copy()
        clone.add_operation("E")
        assert "E" in clone
        assert "E" not in graph

    def test_to_networkx_is_a_copy(self):
        graph = diamond()
        nx_graph = graph.to_networkx()
        nx_graph.add_node("Z")
        assert "Z" not in graph

    def test_repr_mentions_counts(self):
        assert "operations=4" in repr(diamond())


class TestFromDependencies:
    def test_kinds_override(self):
        graph = from_dependencies(
            [("I", "A"), ("A", "O")],
            kinds={"I": OperationKind.EXTERNAL_IO, "O": "extio"},
        )
        assert graph.operation("I").is_external_io()
        assert graph.operation("O").is_external_io()
        assert graph.operation("A").is_computation()
