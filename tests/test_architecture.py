"""Unit tests for the Architecture graph and its routing."""

import pytest

from repro.exceptions import ArchitectureError
from repro.hardware.architecture import Architecture
from repro.hardware.link import Link


def line_of_three() -> Architecture:
    arc = Architecture("line")
    for name in ("P1", "P2", "P3"):
        arc.add_processor(name)
    arc.add_link(Link.between("L1.2", "P1", "P2"))
    arc.add_link(Link.between("L2.3", "P2", "P3"))
    return arc


def triangle() -> Architecture:
    arc = line_of_three()
    arc.add_link(Link.between("L1.3", "P1", "P3"))
    return arc


class TestConstruction:
    def test_add_processor_idempotent(self):
        arc = Architecture()
        arc.add_processor("P1")
        arc.add_processor("P1")
        assert len(arc) == 1

    def test_add_link_by_name_and_endpoints(self):
        arc = Architecture()
        arc.add_processor("P1")
        arc.add_processor("P2")
        link = arc.add_link("L", ["P1", "P2"])
        assert link.is_point_to_point()

    def test_add_link_infers_bus_for_three_endpoints(self):
        arc = Architecture()
        for name in ("P1", "P2", "P3"):
            arc.add_processor(name)
        link = arc.add_link("B", ["P1", "P2", "P3"])
        assert link.is_bus()

    def test_add_link_requires_endpoints(self):
        arc = Architecture()
        with pytest.raises(ArchitectureError, match="endpoints required"):
            arc.add_link("L")

    def test_link_to_unknown_processor_rejected(self):
        arc = Architecture()
        arc.add_processor("P1")
        with pytest.raises(ArchitectureError, match="unknown processor"):
            arc.add_link(Link.between("L", "P1", "P9"))

    def test_duplicate_link_name_rejected(self):
        arc = line_of_three()
        with pytest.raises(ArchitectureError, match="duplicate link"):
            arc.add_link(Link.between("L1.2", "P1", "P3"))


class TestQueries:
    def test_processor_lookup(self):
        arc = line_of_three()
        assert arc.processor("P1").name == "P1"
        with pytest.raises(ArchitectureError):
            arc.processor("P9")

    def test_link_lookup(self):
        arc = line_of_three()
        assert arc.link("L1.2").name == "L1.2"
        with pytest.raises(ArchitectureError):
            arc.link("L9")

    def test_names_sorted(self):
        arc = triangle()
        assert arc.processor_names() == ("P1", "P2", "P3")
        assert arc.link_names() == ("L1.2", "L1.3", "L2.3")

    def test_links_of(self):
        arc = line_of_three()
        assert [l.name for l in arc.links_of("P2")] == ["L1.2", "L2.3"]

    def test_links_between(self):
        arc = line_of_three()
        assert [l.name for l in arc.links_between("P1", "P2")] == ["L1.2"]
        assert arc.links_between("P1", "P3") == ()

    def test_links_between_same_processor_empty(self):
        assert line_of_three().links_between("P1", "P1") == ()

    def test_parallel_links_all_returned(self):
        arc = line_of_three()
        arc.add_link(Link.between("L1.2bis", "P1", "P2"))
        assert [l.name for l in arc.links_between("P1", "P2")] == ["L1.2", "L1.2bis"]

    def test_neighbors(self):
        arc = line_of_three()
        assert arc.neighbors("P2") == ("P1", "P3")
        assert arc.neighbors("P1") == ("P2",)

    def test_is_fully_connected(self):
        assert triangle().is_fully_connected()
        assert not line_of_three().is_fully_connected()

    def test_iteration(self):
        assert list(line_of_three()) == ["P1", "P2", "P3"]


class TestRouting:
    def test_direct_route(self):
        arc = triangle()
        assert [l.name for l in arc.route("P1", "P3")] == ["L1.3"]

    def test_two_hop_route(self):
        arc = line_of_three()
        assert [l.name for l in arc.route("P1", "P3")] == ["L1.2", "L2.3"]

    def test_route_to_self_is_empty(self):
        assert triangle().route("P1", "P1") == ()

    def test_route_unreachable(self):
        arc = Architecture()
        arc.add_processor("P1")
        arc.add_processor("P2")
        with pytest.raises(ArchitectureError, match="no route"):
            arc.route("P1", "P2")

    def test_route_hops_node_sequence(self):
        arc = line_of_three()
        hops = arc.route_hops("P1", "P3")
        assert [(a, l.name, b) for a, l, b in hops] == [
            ("P1", "L1.2", "P2"),
            ("P2", "L2.3", "P3"),
        ]

    def test_route_hops_empty_for_self(self):
        assert triangle().route_hops("P1", "P1") == ()

    def test_hop_count(self):
        arc = line_of_three()
        assert arc.hop_count("P1", "P2") == 1
        assert arc.hop_count("P1", "P3") == 2

    def test_route_through_bus(self):
        arc = Architecture()
        for name in ("P1", "P2", "P3"):
            arc.add_processor(name)
        arc.add_link(Link.bus("BUS", ["P1", "P2", "P3"]))
        assert [l.name for l in arc.route("P1", "P3")] == ["BUS"]

    def test_route_hops_across_two_buses(self):
        arc = Architecture("buses")
        for name in ("P1", "P2", "P3", "P4"):
            arc.add_processor(name)
        arc.add_link(Link.bus("BUSA", ["P1", "P2", "P3"]))
        arc.add_link(Link.bus("BUSB", ["P3", "P4"]))
        hops = arc.route_hops("P1", "P4")
        assert [(a, l.name, b) for a, l, b in hops] == [
            ("P1", "BUSA", "P3"),
            ("P3", "BUSB", "P4"),
        ]

    def test_route_cache_invalidated_by_new_link(self):
        arc = line_of_three()
        assert arc.hop_count("P1", "P3") == 2
        arc.add_link(Link.between("L1.3", "P1", "P3"))
        assert arc.hop_count("P1", "P3") == 1


class TestValidation:
    def test_empty_architecture_rejected(self):
        with pytest.raises(ArchitectureError, match="no processor"):
            Architecture().validate()

    def test_single_processor_valid(self):
        arc = Architecture()
        arc.add_processor("P1")
        arc.validate()

    def test_disconnected_rejected(self):
        arc = Architecture()
        arc.add_processor("P1")
        arc.add_processor("P2")
        with pytest.raises(ArchitectureError, match="disconnected"):
            arc.validate()

    def test_connected_accepted(self):
        line_of_three().validate()

    def test_to_networkx(self):
        graph = triangle().to_networkx()
        assert set(graph.nodes) == {"P1", "P2", "P3"}
        assert graph.number_of_edges() == 3

    def test_repr(self):
        assert "processors=3" in repr(line_of_three())
