"""End-to-end tests of the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.schedule.serialization import load_json


class TestExample:
    def test_example_prints_reference_table(self, capsys):
        assert main(["example"]) == 0
        output = capsys.readouterr().out
        assert "15.05" in output
        assert "paper" in output

    def test_example_with_gantt(self, capsys):
        assert main(["example", "--gantt"]) == 0
        output = capsys.readouterr().out
        assert "P1" in output and "L1.2" in output


class TestGenerateAndSchedule:
    def test_generate_writes_problem(self, tmp_path, capsys):
        target = tmp_path / "problem.json"
        assert main(["generate", str(target), "--operations", "8", "--seed", "5"]) == 0
        document = load_json(target)
        assert len(document["algorithm"]["operations"]) == 8

    def test_schedule_prints_table(self, tmp_path, capsys):
        target = tmp_path / "problem.json"
        main(["generate", str(target), "--operations", "8", "--seed", "5"])
        capsys.readouterr()
        assert main(["schedule", str(target)]) == 0
        output = capsys.readouterr().out
        assert "makespan" in output
        assert "resource" in output

    def test_schedule_saves_output(self, tmp_path, capsys):
        problem = tmp_path / "problem.json"
        schedule = tmp_path / "schedule.json"
        main(["generate", str(problem), "--operations", "6", "--seed", "2"])
        assert main(["schedule", str(problem), "--output", str(schedule)]) == 0
        document = load_json(schedule)
        assert document["operations"]

    def test_schedule_npf_override(self, tmp_path, capsys):
        problem = tmp_path / "problem.json"
        main(["generate", str(problem), "--operations", "6", "--npf", "1"])
        capsys.readouterr()
        assert main(["schedule", str(problem), "--npf", "0"]) == 0
        assert "npf=0" in capsys.readouterr().out

    def test_schedule_infeasible_problem_reports_error(self, tmp_path, capsys):
        problem = tmp_path / "problem.json"
        main(["generate", str(problem), "--operations", "6", "--processors", "2"])
        capsys.readouterr()
        assert main(["schedule", str(problem), "--npf", "3"]) == 1
        assert "error:" in capsys.readouterr().err


class TestSimulate:
    def test_simulate_all_single_crashes(self, tmp_path, capsys):
        problem = tmp_path / "problem.json"
        main(["generate", str(problem), "--operations", "8", "--seed", "7"])
        capsys.readouterr()
        assert main(["simulate", str(problem)]) == 0
        output = capsys.readouterr().out
        assert "P1 fails at t=0" in output

    def test_simulate_explicit_crash(self, tmp_path, capsys):
        problem = tmp_path / "problem.json"
        main(["generate", str(problem), "--operations", "8", "--seed", "7"])
        capsys.readouterr()
        assert main(["simulate", str(problem), "--crash", "P1@0.5"]) == 0
        output = capsys.readouterr().out
        assert "outputs delivered" in output

    def test_simulate_with_detection(self, tmp_path, capsys):
        problem = tmp_path / "problem.json"
        main(["generate", str(problem), "--operations", "8", "--seed", "7"])
        capsys.readouterr()
        assert (
            main(
                [
                    "simulate",
                    str(problem),
                    "--crash",
                    "P2",
                    "--detection",
                    "timeout-array",
                ]
            )
            == 0
        )


class TestIterate:
    def test_nominal_iterations(self, tmp_path, capsys):
        problem = tmp_path / "problem.json"
        main(["generate", str(problem), "--operations", "8", "--seed", "7"])
        capsys.readouterr()
        assert main(["iterate", str(problem), "--iterations", "3"]) == 0
        output = capsys.readouterr().out
        assert "3 iterations" in output
        assert "iteration 2" in output

    def test_iterate_with_crash(self, tmp_path, capsys):
        problem = tmp_path / "problem.json"
        main(["generate", str(problem), "--operations", "8", "--seed", "7"])
        capsys.readouterr()
        assert (
            main(
                [
                    "iterate",
                    str(problem),
                    "--iterations",
                    "2",
                    "--crash",
                    "P1@0",
                    "--detection",
                    "timeout-array",
                ]
            )
            == 0
        )
        assert "outputs at" in capsys.readouterr().out


class TestValidateAndReliability:
    def test_validate_ok(self, tmp_path, capsys):
        problem = tmp_path / "problem.json"
        main(["generate", str(problem), "--operations", "8", "--seed", "9"])
        capsys.readouterr()
        assert main(["validate", str(problem)]) == 0
        assert "schedule valid" in capsys.readouterr().out

    def test_validate_direct_links(self, tmp_path, capsys):
        problem = tmp_path / "problem.json"
        main(["generate", str(problem), "--operations", "8", "--seed", "9"])
        capsys.readouterr()
        assert main(["validate", str(problem), "--direct-links"]) == 0

    def test_reliability_certificate(self, tmp_path, capsys):
        problem = tmp_path / "problem.json"
        main(["generate", str(problem), "--operations", "6", "--seed", "4",
              "--processors", "3"])
        capsys.readouterr()
        assert main(["reliability", str(problem)]) == 0
        output = capsys.readouterr().out
        assert "CERTIFIED" in output

    def test_reliability_with_probability(self, tmp_path, capsys):
        problem = tmp_path / "problem.json"
        main(["generate", str(problem), "--operations", "6", "--seed", "4",
              "--processors", "3"])
        capsys.readouterr()
        assert (
            main(
                ["reliability", str(problem), "--failure-probability", "0.05"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "reliability" in output
        assert "mean iterations" in output


class TestBench:
    def test_bench_npf_small(self, capsys):
        assert main(["bench", "npf", "--graphs", "1"]) == 0
        assert "Npf" in capsys.readouterr().out

    def test_bench_ablation_small(self, capsys):
        assert main(["bench", "ablation", "--graphs", "1"]) == 0
        assert "variant" in capsys.readouterr().out

    def test_bench_without_figure_or_mode_errors(self, capsys):
        assert main(["bench"]) == 2
        assert "figure is required" in capsys.readouterr().err

    def test_bench_smoke_counters_match_pins(self, capsys):
        assert main(["bench", "--smoke"]) == 0
        output = capsys.readouterr().out
        assert "perf smoke ok" in output
        assert "pressure_evaluations" in output
        assert "pair_evaluations" in output

    def test_bench_smoke_detects_counter_drift(self, capsys, monkeypatch):
        from repro import cli as cli_module

        drifted = {
            label: dict(pins)
            for label, pins in cli_module._PERF_SMOKE_PINS.items()
        }
        drifted["ftbar-N40-npf1"]["pressure_evaluations"] += 1
        monkeypatch.setattr(cli_module, "_PERF_SMOKE_PINS", drifted)
        assert main(["bench", "--smoke"]) == 1
        assert "REGRESSED" in capsys.readouterr().out
