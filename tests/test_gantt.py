"""Unit tests for the text renderings of schedules."""

import pytest

from repro.schedule.gantt import render_gantt, schedule_table
from repro.schedule.schedule import Schedule


def sample() -> Schedule:
    schedule = Schedule(processors=["P1", "P2"], links=["L"], npf=1)
    schedule.place_operation("A", "P1", 0.0, 2.0)
    schedule.place_operation("A", "P2", 0.0, 3.0)
    schedule.place_operation("B", "P1", 2.0, 2.0, duplicated=True)
    schedule.place_comm("A", "B", 1, 0, "L", 3.0, 1.0, "P2", "P1")
    return schedule


class TestGantt:
    def test_one_row_per_resource(self):
        text = render_gantt(sample())
        lines = text.splitlines()
        assert lines[0].startswith("P1")
        assert lines[1].startswith("P2")
        assert lines[2].startswith("L")

    def test_links_can_be_hidden(self):
        text = render_gantt(sample(), with_links=False)
        assert not any(line.startswith("L ") for line in text.splitlines())

    def test_empty_schedule(self):
        schedule = Schedule(processors=["P1"])
        assert render_gantt(schedule) == "(empty schedule)"

    def test_minimum_width_enforced(self):
        with pytest.raises(ValueError, match="at least"):
            render_gantt(sample(), width=10)

    def test_labels_present_when_space_allows(self):
        text = render_gantt(sample(), width=120)
        assert "A/0" in text
        assert "A/1" in text

    def test_time_ruler_shows_makespan(self):
        text = render_gantt(sample())
        assert "4" in text.splitlines()[-1]


class TestScheduleTable:
    def test_rows_sorted_by_start(self):
        text = schedule_table(sample())
        lines = [l for l in text.splitlines()[1:] if l.strip()]
        starts = [float(line.split()[-2]) for line in lines]
        assert starts == sorted(starts)

    def test_duplicated_marker(self):
        assert "(dup)" in schedule_table(sample())

    def test_comm_label_present(self):
        assert "A/1->B/0 on L" in schedule_table(sample())

    def test_empty_schedule(self):
        schedule = Schedule(processors=["P1"])
        assert schedule_table(schedule) == "(empty schedule)"
