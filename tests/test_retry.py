"""The shared transient-I/O retry policy (``repro.core.retry``).

One policy backs every hardened I/O path (store appends, cache writes,
claim files, merges), so its contract is pinned once, here: bounded
attempts, decorrelated-jitter delays, and a ``should_retry`` veto that
keeps *answers* (ENOSPC, lost claim races) from being retried like
transients.
"""

import errno
import random

import pytest

from repro.core.retry import decorrelated_jitter, retry_io


class Flaky:
    """Fails ``failures`` times with ``error``, then returns ``value``."""

    def __init__(self, failures, error=None, value="ok"):
        self.failures = failures
        self.error = error or OSError(errno.EIO, "flaky")
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return self.value


def no_sleep(_delay):
    pass


class TestRetryIO:
    def test_first_try_success_never_sleeps(self):
        slept = []
        result = retry_io(lambda: 42, sleep=slept.append)
        assert result == 42
        assert slept == []

    def test_transient_failure_heals(self):
        operation = Flaky(failures=2)
        assert retry_io(operation, attempts=4, sleep=no_sleep) == "ok"
        assert operation.calls == 3

    def test_attempts_bound_final_error_reraises(self):
        operation = Flaky(failures=10)
        with pytest.raises(OSError):
            retry_io(operation, attempts=3, sleep=no_sleep)
        assert operation.calls == 3

    def test_should_retry_vetoes_immediately(self):
        # ENOSPC is an answer, not a transient: one call, no retries.
        operation = Flaky(
            failures=10, error=OSError(errno.ENOSPC, "disk full")
        )
        with pytest.raises(OSError):
            retry_io(
                operation,
                attempts=5,
                sleep=no_sleep,
                should_retry=lambda e: e.errno != errno.ENOSPC,
            )
        assert operation.calls == 1

    def test_non_retry_on_exceptions_propagate(self):
        def broken():
            raise ValueError("not I/O")

        with pytest.raises(ValueError):
            retry_io(broken, sleep=no_sleep)

    def test_on_retry_sees_each_failure(self):
        seen = []
        operation = Flaky(failures=2)
        retry_io(
            operation,
            attempts=4,
            sleep=no_sleep,
            on_retry=lambda attempt, error: seen.append(attempt),
        )
        assert seen == [1, 2]

    def test_sleeps_stay_within_base_and_cap(self):
        slept = []
        operation = Flaky(failures=5)
        retry_io(
            operation,
            attempts=6,
            base_s=0.01,
            cap_s=0.05,
            sleep=slept.append,
            rng=random.Random(7),
        )
        assert len(slept) == 5
        assert all(0.01 <= delay <= 0.05 for delay in slept[1:])
        assert slept[0] == 0.01  # first delay is exactly the base

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            retry_io(lambda: None, attempts=0)


class TestDecorrelatedJitter:
    def test_bounded_by_cap(self):
        rng = random.Random(3)
        for _ in range(100):
            assert decorrelated_jitter(10.0, 0.01, 0.25, rng) == 0.25

    def test_bounded_below_by_base(self):
        rng = random.Random(3)
        for _ in range(100):
            delay = decorrelated_jitter(0.01, 0.01, 0.25, rng)
            assert 0.01 <= delay <= 0.25

    def test_deterministic_given_rng(self):
        a = [
            decorrelated_jitter(0.01, 0.01, 0.25, random.Random(11))
            for _ in range(3)
        ]
        b = [
            decorrelated_jitter(0.01, 0.01, 0.25, random.Random(11))
            for _ in range(3)
        ]
        assert a == b
