"""Second round of property-based tests: baselines, runtime, analysis.

These complement ``test_properties.py`` with invariants across the
subsystems added on top of the core reproduction: HBP masking, the
iterative executor, the exhaustive certificate's consistency with the
plain simulator, and the renderers' totality.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.reliability import fault_tolerance_certificate
from repro.baselines.hbp import schedule_hbp
from repro.core.ftbar import schedule_ftbar
from repro.schedule.gantt import render_gantt, schedule_table
from repro.schedule.graphviz import schedule_to_dot
from repro.schedule.validation import validate_schedule
from repro.simulation.executor import simulate
from repro.simulation.failures import FailureScenario
from repro.simulation.iterative import simulate_iterations
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_configs(draw, npf_values=(1,), heterogeneous=None):
    return RandomWorkloadConfig(
        operations=draw(st.integers(min_value=1, max_value=10)),
        ccr=draw(st.sampled_from([0.5, 1.0, 5.0])),
        processors=draw(st.integers(min_value=3, max_value=4)),
        npf=draw(st.sampled_from(npf_values)),
        heterogeneous=(
            draw(st.booleans()) if heterogeneous is None else heterogeneous
        ),
        seed=draw(st.integers(min_value=0, max_value=5_000)),
    )


@given(config=small_configs(heterogeneous=False))
@_SETTINGS
def test_hbp_schedules_validate_and_mask_single_crashes(config):
    problem = generate_problem(config)
    result = schedule_hbp(problem)
    report = validate_schedule(
        result.schedule,
        problem.algorithm,
        problem.architecture,
        problem.exec_times,
        problem.comm_times,
    )
    assert report.ok, str(report)
    for processor in problem.architecture.processor_names():
        trace = simulate(
            result.schedule, problem.algorithm, FailureScenario.crash(processor)
        )
        assert trace.all_operations_delivered(problem.algorithm), processor


@given(config=small_configs(), iterations=st.integers(1, 4))
@_SETTINGS
def test_nominal_iterations_are_identical_copies(config, iterations):
    problem = generate_problem(config)
    result = schedule_ftbar(problem)
    run = simulate_iterations(
        result.schedule, result.expanded_algorithm, iterations=iterations
    )
    assert len(run) == iterations
    assert run.delivered_count() == iterations
    single = simulate(result.schedule, result.expanded_algorithm).makespan()
    for outcome in run.iterations:
        assert abs(outcome.trace.makespan() - single) < 1e-9


@given(config=small_configs())
@_SETTINGS
def test_certificate_agrees_with_direct_simulation(config):
    problem = generate_problem(config)
    result = schedule_ftbar(problem)
    algorithm = result.expanded_algorithm
    certificate = fault_tolerance_certificate(result.schedule, algorithm)
    # Level-1 masking must agree with one-by-one simulation.
    masked_directly = sum(
        1
        for processor in result.schedule.processor_names()
        if simulate(
            result.schedule, algorithm, FailureScenario.crash(processor)
        ).all_operations_delivered(algorithm)
    )
    assert certificate.level(1).masked_subsets == masked_directly
    assert certificate.certified


@given(config=small_configs(npf_values=(0, 1)))
@_SETTINGS
def test_renderers_are_total(config):
    """Every schedule renders to Gantt, table and DOT without error."""
    problem = generate_problem(config)
    result = schedule_ftbar(problem)
    gantt = render_gantt(result.schedule)
    table = schedule_table(result.schedule)
    dot = schedule_to_dot(result.schedule)
    assert gantt and table
    assert dot.startswith("digraph")
    assert dot.rstrip().endswith("}")


@st.composite
def random_scenarios(draw, processors: tuple[str, ...]):
    """A random set of non-overlapping failure intervals."""
    from repro.simulation.failures import ProcessorFailure

    failures = []
    for processor in processors:
        if not draw(st.booleans()):
            continue
        at = draw(st.floats(min_value=0.0, max_value=100.0))
        permanent = draw(st.booleans())
        if permanent:
            failures.append(ProcessorFailure(processor, at))
        else:
            length = draw(st.floats(min_value=0.1, max_value=50.0))
            failures.append(ProcessorFailure(processor, at, at + length))
    return FailureScenario(failures)


@given(config=small_configs(npf_values=(0, 1)), data=st.data())
@_SETTINGS
def test_simulator_consistency_under_arbitrary_scenarios(config, data):
    """Physical consistency of every degraded run.

    Whatever the failure pattern: completed operations only execute
    while their processor is up; completed comms only occupy the link
    while their sender is up; a completed comm's producer completed
    before it; resource exclusivity holds on the re-timed events.
    """
    problem = generate_problem(config)
    result = schedule_ftbar(problem)
    algorithm = result.expanded_algorithm
    scenario = data.draw(
        random_scenarios(problem.architecture.processor_names())
    )
    trace = simulate(result.schedule, algorithm, scenario)

    producers = {
        (o.operation, o.replica): o for o in trace.operations
    }
    for operation in trace.operations:
        if operation.status.value != "completed":
            continue
        assert scenario.up_during(
            operation.processor, operation.start, operation.end
        ), operation
    for comm in trace.comms:
        if comm.status.value != "completed":
            continue
        assert scenario.up_during(
            comm.source_processor, comm.start, comm.end
        ), comm
        if comm.hop_index == 0:
            producer = producers[(comm.source, comm.source_replica)]
            assert producer.status.value == "completed"
            assert comm.start >= producer.end - 1e-9
    # Re-timed resource exclusivity.
    by_processor: dict[str, list] = {}
    for operation in trace.operations:
        if operation.status.value == "completed":
            by_processor.setdefault(operation.processor, []).append(operation)
    for events in by_processor.values():
        events.sort(key=lambda e: e.start)
        for before, after in zip(events, events[1:]):
            assert before.end <= after.start + 1e-9
    by_link: dict[str, list] = {}
    for comm in trace.comms:
        if comm.status.value == "completed":
            by_link.setdefault(comm.link, []).append(comm)
    for events in by_link.values():
        events.sort(key=lambda e: e.start)
        for before, after in zip(events, events[1:]):
            assert before.end <= after.start + 1e-9


@given(config=small_configs(npf_values=(1,)))
@_SETTINGS
def test_degraded_makespan_never_below_surviving_static_work(config):
    """A crash cannot finish the *surviving* work earlier than nominal.

    The first complete input set of a replica can only get later when
    senders disappear, so every surviving completed operation ends at or
    after its static date.
    """
    problem = generate_problem(config)
    result = schedule_ftbar(problem)
    algorithm = result.expanded_algorithm
    for processor in result.schedule.processor_names():
        trace = simulate(
            result.schedule, algorithm, FailureScenario.crash(processor)
        )
        for event in result.schedule.all_operations():
            if event.processor == processor:
                continue
            outcome = trace.operation_outcome(event.operation, event.replica)
            if outcome.status.value == "completed":
                assert outcome.end >= event.end - 1e-6
