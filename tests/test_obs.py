"""The observability layer: spans, metrics, traces — and its contracts.

The two contracts everything else leans on:

* **off-by-default** — without ``--trace`` / ``REPRO_TRACE`` the
  process tracer is ``None`` and instrumented code runs the no-op
  path;
* **determinism-safety** — telemetry observes and never feeds back:
  with tracing on (and with symmetry pruning + parallel sweeps on),
  schedules, counters and observer streams are bit-identical to a
  plain serial run.

Plus the campaign satellites: job documents keep their ``timing``
schema, and structured warnings (compiled fallback, certification cap)
land deterministically in the result store as ``record["events"]``.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro import obs
from repro.campaign import (
    CampaignSpec,
    ResultStore,
    WorkloadSpec,
    expand_jobs,
    run_campaign,
)
from repro.campaign.jobs import execute_job
from repro.campaign.spec import ReliabilitySpec
from repro.cli import main
from repro.core.compile import reset_compile_cache
from repro.core.ftbar import schedule_ftbar
from repro.core.options import SchedulerOptions
from repro.obs import render
from repro.schedule.serialization import schedule_content_hash
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem


@pytest.fixture(autouse=True)
def _no_global_tracer():
    """Every test starts and ends with tracing off and fresh metrics."""
    obs.disable(snapshot=False)
    obs.metrics.reset()
    yield
    obs.disable(snapshot=False)
    obs.metrics.reset()


def smoke_problem(operations: int = 24, npf: int = 1, seed: int = 11):
    return generate_problem(
        RandomWorkloadConfig(
            operations=operations,
            ccr=1.0,
            processors=4,
            npf=npf,
            seed=seed,
        )
    )


# ----------------------------------------------------------------------
# spans / exporter / schema
# ----------------------------------------------------------------------

class TestSpans:
    def test_off_by_default(self):
        assert obs.tracer() is None
        assert not obs.enabled()
        assert obs.span("anything") is obs.NOOP_SPAN

    def test_noop_span_is_reentrant_singleton(self):
        span = obs.span("x")
        with span as inner:
            assert inner is obs.NOOP_SPAN
            assert inner.set(key="value") is obs.NOOP_SPAN

    def test_span_tree_and_meta(self):
        exporter = obs.ListExporter()
        tracer = obs.Tracer(exporter, meta={"command": "test"})
        with tracer.span("root") as root:
            with tracer.span("child", step=1):
                pass
        lines = exporter.lines
        assert lines[0]["type"] == "meta"
        assert lines[0]["schema"] == obs.SCHEMA_NAME
        child, parent = lines[1], lines[2]
        assert child["name"] == "child"
        assert child["parent"] == parent["id"]
        assert parent["name"] == "root"
        assert "parent" not in parent
        assert child["dur"] <= parent["dur"]
        assert root.id == parent["id"]

    def test_event_binds_to_current_span(self):
        exporter = obs.ListExporter()
        tracer = obs.Tracer(exporter)
        with tracer.span("outer") as outer:
            tracer.event("warn.something", detail=3)
        event = next(l for l in exporter.lines if l["type"] == "event")
        assert event["span"] == outer.id
        assert event["attrs"] == {"detail": 3}

    def test_aggregate_span_shape(self):
        exporter = obs.ListExporter()
        tracer = obs.Tracer(exporter)
        with tracer.span("run"):
            tracer.aggregate("hot.phase", 0.25, 40)
        agg = next(l for l in exporter.lines if "agg" in l)
        assert agg["dur"] == 0.25
        assert agg["agg"] == {"count": 40}
        assert "t0" not in agg and "t1" not in agg

    def test_span_records_exception(self):
        exporter = obs.ListExporter()
        tracer = obs.Tracer(exporter)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        span = next(l for l in exporter.lines if l["type"] == "span")
        assert span["attrs"]["error"] == "ValueError"

    def test_enable_disable_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.enable(path, meta={"command": "unit"})
        assert obs.enabled()
        with obs.span("cli.unit"):
            obs.event("ping")
        obs.disable()
        assert not obs.enabled()
        lines = obs.read_trace(path)
        assert obs.validate_trace(lines) == []
        assert lines[-1]["type"] == "metrics"

    def test_read_trace_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.enable(path)
        with obs.span("work"):
            pass
        obs.disable()
        with path.open("a") as handle:
            handle.write('{"type": "span", "v": 1, "na')  # torn write
        lines = obs.read_trace(path)
        assert lines[0]["type"] == "meta"
        assert all(isinstance(line, dict) for line in lines)


class TestSchema:
    def test_valid_lines_validate_clean(self):
        exporter = obs.ListExporter()
        tracer = obs.Tracer(exporter)
        with tracer.span("a", note="x"):
            tracer.event("e")
            tracer.aggregate("agg", 0.1, 3)
        tracer.snapshot(obs.metrics.snapshot())
        assert obs.validate_trace(exporter.lines) == []

    def test_unknown_key_is_rejected(self):
        errors = obs.validate_line(
            {"type": "event", "v": 1, "name": "e", "t": 0.0, "bogus": 1}
        )
        assert any("bogus" in e for e in errors)

    def test_missing_required_key_is_rejected(self):
        errors = obs.validate_line({"type": "span", "v": 1, "name": "s"})
        assert errors

    def test_newer_version_is_accepted(self):
        line = {"type": "span", "v": obs.SCHEMA_VERSION + 1, "weird": True}
        assert obs.validate_line(line) == []

    def test_stream_must_start_with_meta(self):
        lines = [{"type": "span", "v": 1, "name": "s", "id": 1, "dur": 0.0}]
        assert any("meta" in e for e in obs.validate_trace(lines))

    def test_dangling_parent_is_reported(self):
        exporter = obs.ListExporter()
        tracer = obs.Tracer(exporter)
        with tracer.span("a"):
            pass
        lines = exporter.lines + [
            {"type": "span", "v": 1, "name": "b", "id": 99,
             "dur": 0.0, "parent": 42}
        ]
        assert any("dangling" in e for e in obs.validate_trace(lines))


class TestMetrics:
    def test_counters_gauges_histograms(self):
        registry = obs.MetricsRegistry()
        registry.inc("jobs")
        registry.inc("jobs", 2)
        registry.gauge("pending", 5)
        registry.observe("latency", 0.5)
        registry.observe("latency", 1.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["jobs"] == 3
        assert snapshot["gauges"]["pending"] == 5
        assert snapshot["histograms"]["latency"] == {
            "count": 2, "sum": 2.0, "min": 0.5, "max": 1.5,
        }

    def test_labels_make_series(self):
        registry = obs.MetricsRegistry()
        registry.inc("jobs", topology="ring", npf=1)
        assert "jobs{npf=1,topology=ring}" in registry.snapshot()["counters"]

    def test_collectors_pull_on_snapshot(self):
        registry = obs.MetricsRegistry()
        registry.register_collector("source", lambda: {"value": 7})
        assert registry.snapshot()["collected"]["source"] == {"value": 7}
        registry.unregister_collector("source")
        assert registry.snapshot()["collected"] == {}

    def test_failing_collector_is_isolated(self):
        registry = obs.MetricsRegistry()

        def explode():
            raise RuntimeError("broken source")

        registry.register_collector("bad", explode)
        registry.register_collector("good", lambda: {"ok": 1})
        collected = registry.snapshot()["collected"]
        assert collected["good"] == {"ok": 1}
        assert "broken source" in collected["bad"]["error"]

    def test_repo_collectors_registered(self):
        collected = obs.metrics.snapshot()["collected"]
        assert "compile_cache" in collected
        assert "batch_sim" in collected
        assert "core_hits" in collected["compile_cache"]


# ----------------------------------------------------------------------
# determinism: telemetry observes, never feeds back
# ----------------------------------------------------------------------

class TestDeterminism:
    def run_problem(self, options, observer=None):
        reset_compile_cache()
        return schedule_ftbar(smoke_problem(), options, observer=observer)

    def test_traced_run_is_bit_identical(self):
        options = SchedulerOptions()
        plain_records, traced_records = [], []
        plain = self.run_problem(options, plain_records.append)
        exporter = obs.ListExporter()
        obs.enable(exporter)
        traced = self.run_problem(options, traced_records.append)
        obs.disable()
        assert schedule_content_hash(plain.schedule) == schedule_content_hash(
            traced.schedule
        )
        assert plain_records == traced_records
        assert plain.stats.steps == traced.stats.steps
        assert (
            plain.stats.pressure_evaluations
            == traced.stats.pressure_evaluations
        )
        assert plain.stats.cache_hits == traced.stats.cache_hits
        assert plain.stats.symmetry_pruned == traced.stats.symmetry_pruned
        # And the trace actually saw the run.
        names = {l["name"] for l in exporter.lines if l.get("type") == "span"}
        assert {"ftbar.run", "kernel.sweep", "kernel.place"} <= names

    def test_step_stream_pruned_parallel_equals_unpruned_serial(self):
        """Satellite: StepRecords under symmetry + sweep_workers=2.

        The observer stream of a traced, symmetry-pruned, two-worker
        sweep must equal the plain serial unpruned stream — record for
        record, pressures included.
        """
        baseline_records: list = []
        pruned_records: list = []
        baseline = self.run_problem(
            SchedulerOptions(symmetry=False, sweep_workers=None),
            baseline_records.append,
        )
        obs.enable(obs.ListExporter())
        pruned = self.run_problem(
            SchedulerOptions(symmetry=True, sweep_workers=2),
            pruned_records.append,
        )
        obs.disable()
        assert baseline_records == pruned_records
        assert schedule_content_hash(
            baseline.schedule
        ) == schedule_content_hash(pruned.schedule)

    def test_run_counters_published_to_registry(self):
        obs.metrics.reset()
        obs.enable(obs.ListExporter())
        result = self.run_problem(SchedulerOptions())
        obs.disable(snapshot=False)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["ftbar.runs"] == 1
        assert counters["ftbar.steps"] == result.stats.steps
        assert (
            counters["ftbar.pressure_evaluations"]
            == result.stats.pressure_evaluations
        )


class TestCompileCacheReset:
    def test_recompile_after_reset_with_warm_row_cache(self):
        """Regression: the comm-row cache lives on the table object and
        survives ``reset_compile_cache()``; recompiling the same problem
        then hits the row cache while missing the variant memo, a path
        that once crashed with an UnboundLocalError."""
        problem = smoke_problem()
        first = schedule_ftbar(problem, SchedulerOptions())
        reset_compile_cache()
        second = schedule_ftbar(problem, SchedulerOptions())
        assert schedule_content_hash(first.schedule) == schedule_content_hash(
            second.schedule
        )


# ----------------------------------------------------------------------
# campaign integration
# ----------------------------------------------------------------------

def tiny_spec(**overrides) -> CampaignSpec:
    values = dict(
        name="obs-tiny",
        workloads=(WorkloadSpec(family="random", size=12),),
        topologies=("fully_connected",),
        processors=(4,),
        npfs=(1,),
        ccrs=(1.0,),
        seeds=(1, 2),
        measures=("ftbar",),
        failures=(),
    )
    values.update(overrides)
    return CampaignSpec(**values)


class TestCampaignTelemetry:
    def test_timing_schema_backward_compatible(self):
        job = expand_jobs(tiny_spec())[0]
        document = execute_job(job)
        timing = document["timing"]
        assert timing["elapsed_s"] > 0.0
        assert set(timing["compile_cache"]) == {
            "core_hits", "core_misses", "variant_hits", "variant_misses",
        }
        telemetry = timing["obs"]
        assert telemetry["worker"] > 0
        span_names = {entry["name"] for entry in telemetry["spans"]}
        assert {"job.run", "job.build_problem", "job.schedule"} <= span_names
        # The job document stays strict JSON (cache/store requirement).
        json.dumps(document)

    def test_job_document_has_no_events_key_when_clean(self):
        document = execute_job(expand_jobs(tiny_spec())[0])
        assert "events" not in document["record"]

    def test_traced_campaign_equals_untraced(self, tmp_path):
        spec = tiny_spec()
        obs.enable(tmp_path / "trace.jsonl")
        traced = run_campaign(spec, jobs=1, store=tmp_path / "a.jsonl")
        obs.disable()
        plain = run_campaign(spec, jobs=1, store=tmp_path / "b.jsonl")
        assert traced.records == plain.records
        lines = obs.read_trace(tmp_path / "trace.jsonl")
        assert obs.validate_trace(lines) == []
        completions = [
            l for l in lines
            if l.get("type") == "event" and l["name"] == "campaign.job"
        ]
        assert len(completions) == traced.executed

    def test_fallback_warning_lands_in_store(self, tmp_path):
        """Satellite: CompiledFallbackWarning → record["events"] → store."""
        spec = tiny_spec(
            name="obs-fallback",
            options={"compiled": True, "link_insertion": True},
            seeds=(1,),
        )
        store = ResultStore(tmp_path / "results.jsonl")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            report = run_campaign(spec, jobs=1, store=store)
        stored = store.load()
        assert len(stored) == len(report.records) == 1
        (record,) = stored.values()
        assert record["events"] == [{"kind": "compiled_fallback"}]

    def test_certification_cap_lands_in_store(self, tmp_path):
        """Satellite: CertificationCapWarning → record["events"] → store.

        The warning only exists on the legacy ``method="exact"`` path —
        the default adaptive ladder answers past the cap without one
        (tests/test_sampled_certification.py).
        """
        spec = tiny_spec(
            name="obs-cap",
            workloads=(WorkloadSpec(family="in_tree", size=2),),
            topologies=("single_bus",),
            processors=(13,),  # > ENUMERATION_CAP
            seeds=(1,),
            measures=("ftbar", "reliability"),
            reliability=ReliabilitySpec(probabilities=(0.01,), method="exact"),
        )
        store = ResultStore(tmp_path / "results.jsonl")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            run_campaign(spec, jobs=1, store=store)
        (record,) = store.load().values()
        (event,) = record["events"]
        assert event["kind"] == "certification_cap"
        assert event["resources"] == ["processors"]
        assert event["enumerated_subsets"] <= event["total_subsets"]

    def test_events_identical_across_worker_counts(self, tmp_path):
        spec = tiny_spec(
            name="obs-fallback-workers",
            options={"compiled": True, "link_insertion": True},
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            serial = run_campaign(spec, jobs=1)
            parallel = run_campaign(spec, jobs=2)
        assert serial.records == parallel.records
        for record in serial.records.values():
            assert record["events"] == [{"kind": "compiled_fallback"}]

    def test_warnings_still_reach_the_caller(self):
        spec = tiny_spec(
            name="obs-warn",
            options={"compiled": True, "link_insertion": True},
            seeds=(1,),
        )
        with pytest.warns(Warning, match="link_insertion"):
            run_campaign(spec, jobs=1)


# ----------------------------------------------------------------------
# renderers + CLI
# ----------------------------------------------------------------------

class TestRenderers:
    def traced_lines(self):
        exporter = obs.ListExporter()
        obs.enable(exporter)
        with obs.span("cli.test"):
            schedule_ftbar(smoke_problem(), SchedulerOptions())
        obs.disable()
        return exporter.lines

    def test_phase_table_and_coverage(self):
        lines = self.traced_lines()
        table = render.render_phase_table(lines)
        assert "ftbar.run" in table
        assert render.coverage(lines) > 0.9

    def test_aggregate_spans_fold(self):
        lines = self.traced_lines()
        folded = {entry["name"]: entry for entry in obs.aggregate_spans(lines)}
        assert folded["kernel.sweep"]["count"] == 24
        assert folded["ftbar.run"]["total_s"] > 0.0

    def test_tree_render(self):
        tree = render.render_tree(self.traced_lines())
        assert "cli.test" in tree
        assert "kernel.sweep x24" in tree

    def test_snapshot_render(self):
        snapshot = render.last_snapshot(self.traced_lines())
        assert snapshot is not None
        text = render.render_snapshot(snapshot)
        assert "compile_cache" in text


class TestCli:
    def test_trace_flag_and_trace_command(self, tmp_path, capsys):
        problem_path = tmp_path / "problem.json"
        assert main(["generate", str(problem_path), "--operations", "12"]) == 0
        trace_path = tmp_path / "trace.jsonl"
        assert main([
            "schedule", str(problem_path), "--trace", str(trace_path),
        ]) == 0
        assert main([
            "trace", str(trace_path), "--validate", "--min-coverage", "0.9",
        ]) == 0
        out = capsys.readouterr().out
        assert "trace OK" in out
        assert "cli.schedule" in out

    def test_stats_command(self, tmp_path, capsys):
        problem_path = tmp_path / "problem.json"
        main(["generate", str(problem_path), "--operations", "12"])
        trace_path = tmp_path / "trace.jsonl"
        main(["schedule", str(problem_path), "--trace", str(trace_path)])
        assert main(["stats", str(trace_path)]) == 0
        assert "ftbar.steps" in capsys.readouterr().out

    def test_trace_command_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span", "v": 1, "name": "x", "id": 1, '
                       '"dur": 0.0, "bogus": true}\n')
        assert main(["trace", str(bad), "--validate"]) == 1
        assert "invalid" in capsys.readouterr().err

    def test_env_toggle(self, tmp_path):
        assert obs.configure_from_env({"REPRO_TRACE": "0"}) is None
        assert obs.configure_from_env({}) is None
        tracer = obs.configure_from_env(
            {"REPRO_TRACE": str(tmp_path / "t.jsonl")}
        )
        assert tracer is not None
        obs.disable()
        assert obs.read_trace(tmp_path / "t.jsonl")[0]["type"] == "meta"
