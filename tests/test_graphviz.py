"""Tests for the Graphviz DOT exporters."""

from repro.schedule.graphviz import (
    algorithm_to_dot,
    architecture_to_dot,
    schedule_to_dot,
)
from repro.hardware.topologies import single_bus
from repro.workloads.paper_example import build_algorithm, build_architecture


class TestAlgorithmDot:
    def test_contains_all_operations_and_edges(self):
        dot = algorithm_to_dot(build_algorithm())
        for operation in "IABCDEFGO":
            assert f'"{operation}"' in dot
        assert '"I" -> "A";' in dot
        assert '"G" -> "O";' in dot

    def test_kind_shapes(self):
        dot = algorithm_to_dot(build_algorithm())
        assert '"I" [shape=ellipse];' in dot  # extio
        assert '"A" [shape=box];' in dot  # comp

    def test_memory_shape(self):
        from repro.graphs.algorithm import AlgorithmGraph
        from repro.graphs.operations import OperationKind

        graph = AlgorithmGraph("m")
        graph.add_operation("M", OperationKind.MEMORY)
        assert '"M" [shape=cylinder];' in algorithm_to_dot(graph)

    def test_is_a_digraph(self):
        dot = algorithm_to_dot(build_algorithm())
        assert dot.startswith('digraph "paper-example" {')
        assert dot.rstrip().endswith("}")


class TestArchitectureDot:
    def test_point_to_point_edges_labelled(self):
        dot = architecture_to_dot(build_architecture())
        assert '"P1" -- "P2" [label="L1.2"];' in dot

    def test_bus_rendered_as_hub(self):
        dot = architecture_to_dot(single_bus(3))
        assert '"bus_BUS" [shape=point' in dot
        assert '"P1" -- "bus_BUS";' in dot

    def test_is_an_undirected_graph(self):
        assert architecture_to_dot(build_architecture()).startswith("graph ")


class TestScheduleDot:
    def test_clusters_and_comms(self, paper_result):
        dot = schedule_to_dot(paper_result.schedule)
        assert "subgraph cluster_0" in dot
        assert 'label="P1";' in dot
        # every comm shows its link and window
        for comm in paper_result.schedule.all_comms():
            assert comm.link in dot

    def test_duplicated_replicas_dashed(self, paper_result):
        dot = schedule_to_dot(paper_result.schedule)
        assert "style=dashed" in dot

    def test_time_windows_in_labels(self, paper_result):
        dot = schedule_to_dot(paper_result.schedule)
        assert "[0, 1)" in dot  # I/0 on P1 runs [0, 1)
