"""Tests for the disjoint-route planner (link-failure tolerance layer).

The planner must (a) reproduce the legacy BFS shortest route exactly for
``count = 1`` (that is what keeps ``npl = 0`` scheduling bit-identical),
(b) return pairwise link-disjoint routes bounded by Menger's theorem,
(c) be deterministic across runs and rebuilt architectures, and (d) fail
with an actionable error when ``Npl + 1`` disjoint routes do not exist.
"""

import pytest

from repro.exceptions import ArchitectureError
from repro.hardware.architecture import Architecture
from repro.hardware.link import Link
from repro.hardware.routing import RoutePlanner
from repro.hardware.topologies import fully_connected, ring, single_bus, star


def _links_of_route(route):
    return [link.name for _, link, _ in route]


def _assert_route_wellformed(architecture, route, source, target):
    here = source
    for origin, link, relay in route:
        assert origin == here
        assert link.attaches(origin)
        assert link.attaches(relay)
        here = relay
    assert here == target


def _assert_disjoint(routes):
    seen: set[str] = set()
    for route in routes:
        names = set(_links_of_route(route))
        assert len(names) == len(route), "route reuses a link"
        assert not (names & seen), "routes share a link"
        seen |= names


class TestMengerBound:
    def test_ring_every_pair_is_two(self):
        arc = ring(5)
        names = arc.processor_names()
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                assert arc.menger_bound(a, b) == 2

    def test_fully_connected_is_p_minus_one(self):
        for count in (3, 4, 5):
            arc = fully_connected(count)
            assert arc.menger_bound("P1", "P2") == count - 1

    def test_star_leaf_pairs_are_one(self):
        arc = star(4)
        assert arc.menger_bound("P2", "P3") == 1
        assert arc.menger_bound("P1", "P2") == 1  # hub-leaf: one spoke

    def test_bus_is_single_resource(self):
        arc = single_bus(4)
        assert arc.menger_bound("P1", "P3") == 1

    def test_two_buses_give_two(self):
        arc = Architecture("double-bus")
        for name in ("P1", "P2", "P3"):
            arc.add_processor(name)
        arc.add_link(Link.bus("BUS.A", ("P1", "P2", "P3")))
        arc.add_link(Link.bus("BUS.B", ("P1", "P2", "P3")))
        assert arc.menger_bound("P1", "P3") == 2

    def test_self_pair_is_zero(self):
        assert ring(4).menger_bound("P1", "P1") == 0

    def test_disconnected_is_zero(self):
        arc = Architecture("split")
        for name in ("P1", "P2"):
            arc.add_processor(name)
        assert arc.menger_bound("P1", "P2") == 0


class TestDisjointRoutes:
    def test_count_one_is_the_legacy_route(self):
        for builder in (ring, fully_connected, star, single_bus):
            arc = builder(4)
            names = arc.processor_names()
            for a in names:
                for b in names:
                    if a == b:
                        continue
                    assert arc.disjoint_route_hops(a, b, 1) == (
                        arc.route_hops(a, b),
                    )

    @pytest.mark.parametrize("builder,count", [
        (ring, 2), (fully_connected, 3),
    ])
    def test_disjointness_and_wellformedness(self, builder, count):
        arc = builder(4)
        names = arc.processor_names()
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                routes = arc.disjoint_route_hops(a, b, count)
                assert len(routes) == count
                _assert_disjoint(routes)
                for route in routes:
                    _assert_route_wellformed(arc, route, a, b)

    def test_ring_adjacent_pair_takes_both_arcs(self):
        arc = ring(4)
        routes = arc.disjoint_route_hops("P1", "P2", 2)
        assert _links_of_route(routes[0]) == ["L1.2"]
        assert _links_of_route(routes[1]) == ["L1.4", "L3.4", "L2.3"]

    def test_two_buses_route_over_distinct_buses(self):
        arc = Architecture("double-bus")
        for name in ("P1", "P2", "P3"):
            arc.add_processor(name)
        arc.add_link(Link.bus("BUS.A", ("P1", "P2", "P3")))
        arc.add_link(Link.bus("BUS.B", ("P1", "P2", "P3")))
        routes = arc.disjoint_route_hops("P1", "P3", 2)
        assert [_links_of_route(r) for r in routes] == [["BUS.A"], ["BUS.B"]]

    def test_deterministic_across_runs_and_rebuilds(self):
        def snapshot(arc):
            names = arc.processor_names()
            return {
                (a, b): tuple(
                    tuple((o, l.name, r) for o, l, r in route)
                    for route in arc.disjoint_route_hops(a, b, 2)
                )
                for i, a in enumerate(names)
                for b in names[i + 1:]
            }

        first = snapshot(ring(6))
        assert first == snapshot(ring(6))
        # Memoized results match fresh computations.
        arc = ring(6)
        assert snapshot(arc) == snapshot(arc) == first

    def test_avoid_preference_skips_named_relays(self):
        arc = fully_connected(4)
        routes = arc.route_planner.disjoint_routes(
            "P1", "P3", 2, avoid=frozenset({"P2"})
        )
        relays = {
            node
            for route in routes
            for origin, _, relay in route
            for node in (origin, relay)
        } - {"P1", "P3"}
        assert "P2" not in relays

    def test_avoid_is_a_preference_not_a_constraint(self):
        # On the ring, avoiding both intermediate processors is
        # impossible; the planner must fall back to the full graph.
        arc = ring(4)
        routes = arc.route_planner.disjoint_routes(
            "P1", "P2", 2, avoid=frozenset({"P3", "P4"})
        )
        assert len(routes) == 2
        _assert_disjoint(routes)


class TestErrors:
    def test_star_cannot_offer_two_routes(self):
        arc = star(4)
        with pytest.raises(ArchitectureError) as excinfo:
            arc.disjoint_route_hops("P2", "P3", 2)
        message = str(excinfo.value)
        assert "only 1 link-disjoint route(s)" in message
        assert "Npl" in message  # actionable: names the hypothesis knob

    def test_count_above_menger_bound(self):
        arc = ring(4)
        with pytest.raises(ArchitectureError, match="only 2 link-disjoint"):
            arc.disjoint_route_hops("P1", "P3", 3)

    def test_invalid_count(self):
        with pytest.raises(ArchitectureError, match="route count"):
            ring(4).disjoint_route_hops("P1", "P2", 0)

    def test_self_route_rejected(self):
        with pytest.raises(ArchitectureError):
            ring(4).disjoint_route_hops("P1", "P1", 2)

    def test_unknown_processor(self):
        with pytest.raises(ArchitectureError):
            ring(4).disjoint_route_hops("P1", "P9", 2)

    def test_require_disjoint_routes(self):
        ring(4).route_planner.require_disjoint_routes(2)
        with pytest.raises(ArchitectureError):
            star(4).route_planner.require_disjoint_routes(2)


class TestPlannerIsTheSingleEntryPoint:
    def test_architecture_delegates_to_one_planner(self):
        arc = ring(4)
        planner = arc.route_planner
        assert isinstance(planner, RoutePlanner)
        assert arc.route_planner is planner  # memoized
        assert arc.route("P1", "P3") == planner.shortest_route("P1", "P3")
        assert arc.route_hops("P1", "P3") == planner.route_hops("P1", "P3")

    def test_structural_change_invalidates_planner(self):
        arc = ring(4)
        before = arc.route_planner
        assert arc.menger_bound("P1", "P3") == 2
        arc.add_link(Link.between("L1.3", "P1", "P3"))
        assert arc.route_planner is not before
        assert arc.menger_bound("P1", "P3") == 3
