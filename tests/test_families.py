"""Tests for the classic task-graph families."""

import pytest

from repro.core.ftbar import schedule_ftbar
from repro.schedule.validation import validate_schedule
from repro.workloads.families import (
    butterfly,
    family_problem,
    gaussian_elimination,
    in_tree,
    out_tree,
    pipeline,
)


class TestInTree:
    def test_shape(self):
        graph = in_tree(2, arity=2)
        assert len(graph) == 4 + 2 + 1
        assert len(graph.sources()) == 4
        assert graph.sinks() == ("R2_0",)

    def test_arity_three(self):
        graph = in_tree(1, arity=3)
        assert len(graph.sources()) == 3
        assert graph.predecessors("R1_0") == ("R0_0", "R0_1", "R0_2")

    def test_depth_zero(self):
        graph = in_tree(0)
        assert len(graph) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            in_tree(-1)


class TestOutTree:
    def test_shape(self):
        graph = out_tree(2, arity=2)
        assert graph.sources() == ("B0_0",)
        assert len(graph.sinks()) == 4

    def test_mirror_of_in_tree(self):
        reduction = in_tree(2)
        broadcast = out_tree(2)
        assert len(reduction) == len(broadcast)
        assert len(reduction.sources()) == len(broadcast.sinks())


class TestButterfly:
    def test_shape(self):
        graph = butterfly(2)
        assert len(graph) == 4 * 3  # 2^2 rows, 3 stages
        assert len(graph.sources()) == 4
        assert len(graph.sinks()) == 4

    def test_each_inner_node_has_two_preds(self):
        graph = butterfly(3)
        for row in range(8):
            assert len(graph.predecessors(f"F1_{row}")) == 2

    def test_butterfly_partners(self):
        graph = butterfly(2)
        assert graph.has_dependency("F0_0", "F1_1")  # partner 0^1
        assert graph.has_dependency("F1_0", "F2_2")  # partner 0^2

    def test_stage_zero(self):
        assert len(butterfly(0)) == 1


class TestGaussianElimination:
    def test_size_three_structure(self):
        graph = gaussian_elimination(3)
        assert set(graph.operation_names()) == {"P0", "U0_1", "U0_2", "P1", "U1_2"}
        assert graph.has_dependency("P0", "U0_1")
        assert graph.has_dependency("U0_1", "P1")
        assert graph.has_dependency("U0_2", "U1_2")
        assert graph.has_dependency("P1", "U1_2")

    def test_acyclic_and_single_sink(self):
        graph = gaussian_elimination(5)
        assert graph.is_acyclic()
        assert graph.sinks() == (f"U3_4",)

    def test_node_count(self):
        # sum_{k=0}^{size-2} (1 + size-1-k)
        graph = gaussian_elimination(4)
        assert len(graph) == (1 + 3) + (1 + 2) + (1 + 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            gaussian_elimination(1)


class TestPipeline:
    def test_single_lane(self):
        graph = pipeline(4)
        assert len(graph) == 4
        assert graph.sources() == ("S0_0",)

    def test_multi_lane(self):
        graph = pipeline(3, width=2)
        assert len(graph) == 6
        assert len(graph.sources()) == 2
        assert not graph.has_dependency("S0_0", "S1_1")

    def test_invalid(self):
        with pytest.raises(ValueError):
            pipeline(0)


class TestFamilyProblems:
    @pytest.mark.parametrize(
        "graph",
        [
            in_tree(2),
            out_tree(2),
            butterfly(2),
            gaussian_elimination(4),
            pipeline(4, width=2),
        ],
        ids=["in_tree", "out_tree", "butterfly", "gauss", "pipeline"],
    )
    def test_every_family_schedules_and_validates(self, graph):
        problem = family_problem(graph, processors=3, npf=1, ccr=2.0)
        result = schedule_ftbar(problem)
        report = validate_schedule(
            result.schedule,
            result.expanded_algorithm,
            problem.architecture,
            problem.exec_times,
            problem.comm_times,
        )
        assert report.ok, str(report)

    def test_problem_naming(self):
        problem = family_problem(butterfly(1), processors=2, ccr=0.5, npf=0)
        assert "butterfly" in problem.name
        assert "ccr0.5" in problem.name
