"""Tests for the §6.2 evaluation metrics."""

import pytest

from repro.analysis.metrics import (
    degraded_lengths,
    overhead_percent,
    presence_overheads,
    replication_profile,
    worst_degraded_length,
)
from repro.core.ftbar import schedule_ftbar
from repro.exceptions import SimulationError
from repro.graphs.builder import diamond

from tests.util import uniform_problem


class TestOverheadFormula:
    def test_paper_formula(self):
        # (15.05 - 10.7) / 15.05 * 100
        assert overhead_percent(15.05, 10.7) == pytest.approx(28.9036544)

    def test_zero_when_equal(self):
        assert overhead_percent(10.0, 10.0) == 0.0

    def test_negative_when_ft_is_shorter(self):
        assert overhead_percent(8.0, 10.0) < 0.0

    def test_invalid_ft_length(self):
        with pytest.raises(ValueError):
            overhead_percent(0.0, 1.0)


class TestReplicationProfile:
    def test_counts(self, paper_result):
        profile = replication_profile(paper_result.schedule)
        assert profile.operations == 9
        assert profile.replicas >= 18
        assert profile.duplicated >= 1
        assert profile.comms == paper_result.schedule.comm_count()
        assert profile.average_replication >= 2.0

    def test_empty_profile(self):
        from repro.schedule.schedule import Schedule

        profile = replication_profile(Schedule(processors=["P1"]))
        assert profile.average_replication == 0.0


class TestLoadProfile:
    def test_busy_times(self, paper_result):
        from repro.analysis.metrics import load_profile

        profile = load_profile(paper_result.schedule)
        assert set(profile.processor_busy) == {"P1", "P2", "P3"}
        assert set(profile.link_busy) == {"L1.2", "L1.3", "L2.3"}
        assert profile.makespan == pytest.approx(15.05)
        for processor in ("P1", "P2", "P3"):
            assert 0.0 < profile.processor_utilization(processor) <= 1.0

    def test_balance_bounds(self, paper_result):
        from repro.analysis.metrics import load_profile

        profile = load_profile(paper_result.schedule)
        assert 0.0 < profile.balance <= 1.0

    def test_empty_schedule_profile(self):
        from repro.analysis.metrics import load_profile
        from repro.schedule.schedule import Schedule

        profile = load_profile(Schedule(processors=["P1"], links=["L"]))
        assert profile.balance == 1.0
        assert profile.processor_utilization("P1") == 0.0
        assert profile.link_utilization("L") == 0.0


class TestOutputLatencies:
    def test_paper_example_latencies(self, paper_result):
        from repro.analysis.metrics import output_latencies

        latencies = output_latencies(
            paper_result.schedule, paper_result.expanded_algorithm
        )
        assert set(latencies) == {"O"}
        entry = latencies["O"]
        # Nominally O's first replica completes before the full schedule
        # ends (straggler replicas keep running).
        assert entry.nominal <= paper_result.makespan
        assert entry.worst_single_crash >= entry.nominal
        assert entry.degradation >= 0.0

    def test_worst_culprit_identified_when_degraded(self, paper_result):
        from repro.analysis.metrics import output_latencies

        latencies = output_latencies(
            paper_result.schedule, paper_result.expanded_algorithm
        )
        entry = latencies["O"]
        if entry.degradation > 0:
            assert entry.worst_crashed_processor in ("P1", "P2", "P3")
        else:
            assert entry.worst_crashed_processor is None

    def test_unmasked_crash_raises(self):
        from repro.analysis.metrics import output_latencies
        from repro.exceptions import SimulationError

        problem = uniform_problem(diamond(), processors=2, npf=0)
        result = schedule_ftbar(problem)
        with pytest.raises(SimulationError, match="loses output"):
            output_latencies(result.schedule, result.expanded_algorithm)


class TestDegradedLengths:
    def test_one_entry_per_processor(self, paper_result):
        lengths = degraded_lengths(
            paper_result.schedule, paper_result.expanded_algorithm
        )
        assert set(lengths) == {"P1", "P2", "P3"}
        assert all(length > 0 for length in lengths.values())

    def test_worst_degraded_length(self, paper_result):
        lengths = degraded_lengths(
            paper_result.schedule, paper_result.expanded_algorithm
        )
        assert worst_degraded_length(
            paper_result.schedule, paper_result.expanded_algorithm
        ) == max(lengths.values())

    def test_unmasked_crash_raises(self):
        problem = uniform_problem(diamond(), processors=2, npf=0)
        result = schedule_ftbar(problem)
        with pytest.raises(SimulationError, match="not masked"):
            degraded_lengths(result.schedule, result.expanded_algorithm)

    def test_presence_overheads(self, paper_result):
        overheads = presence_overheads(
            paper_result.schedule,
            paper_result.expanded_algorithm,
            non_ft_length=10.5,
        )
        assert set(overheads) == {"P1", "P2", "P3"}
        for value in overheads.values():
            assert 0.0 < value < 100.0
