"""The certification enumeration cap warns instead of silently sampling.

ROADMAP follow-up: for P > 12 (or L > 12) the exhaustive per-level
subset sweep leaves the regime the certifier was designed for.  The
legacy ``method="exact"`` path caps each level at
``MAX_SUBSETS_PER_LEVEL`` subsets taken deterministically in canonical
order and emits a *structured*
:class:`~repro.analysis.reliability.CertificationCapWarning` naming the
cap and the enumerated fraction — never a silent weakening.  The
default ``method="auto"`` path retired the warning entirely: past the
cap it switches to bounds/projection/sampling with quantified output
(see ``tests/test_sampled_certification.py``).
"""

from __future__ import annotations

import warnings

import pytest

from repro.analysis import reliability as reliability_module
from repro.analysis.reliability import (
    CertificationCapWarning,
    ENUMERATION_CAP,
    fault_tolerance_certificate,
)
from repro.core.ftbar import schedule_ftbar
from repro.graphs.algorithm import from_dependencies
from repro.hardware.topologies import fully_connected, single_bus
from repro.problem import ProblemSpec
from repro.timing.comm_times import CommunicationTimes
from repro.timing.exec_times import ExecutionTimes


def _wide_problem(processors: int) -> ProblemSpec:
    """A tiny chain on a wide architecture (P > ENUMERATION_CAP)."""
    algorithm = from_dependencies([("I", "A"), ("A", "O")])
    architecture = single_bus(processors)
    exec_times = ExecutionTimes.uniform(
        algorithm.operation_names(), architecture.processor_names(), 2.0
    )
    comm_times = CommunicationTimes.uniform(
        algorithm.dependencies(), architecture.link_names(), 1.0
    )
    return ProblemSpec(
        algorithm=algorithm,
        architecture=architecture,
        exec_times=exec_times,
        comm_times=comm_times,
        npf=1,
        name=f"wide-{processors}",
    )


def _linky_problem() -> ProblemSpec:
    """A tiny chain on an architecture with more links than the cap."""
    algorithm = from_dependencies([("I", "A"), ("A", "O")])
    architecture = fully_connected(6)  # 15 links > ENUMERATION_CAP
    exec_times = ExecutionTimes.uniform(
        algorithm.operation_names(), architecture.processor_names(), 2.0
    )
    comm_times = CommunicationTimes.uniform(
        algorithm.dependencies(), architecture.link_names(), 1.0
    )
    return ProblemSpec(
        algorithm=algorithm,
        architecture=architecture,
        exec_times=exec_times,
        comm_times=comm_times,
        npf=1,
        name="linky-6",
    )


def test_below_the_cap_no_warning():
    result = schedule_ftbar(_wide_problem(4))
    with warnings.catch_warnings():
        warnings.simplefilter("error", CertificationCapWarning)
        fault_tolerance_certificate(result.schedule, result.expanded_algorithm)


def test_processor_cap_emits_structured_warning():
    processors = ENUMERATION_CAP + 1
    result = schedule_ftbar(_wide_problem(processors))
    with pytest.warns(CertificationCapWarning) as captured:
        certificate = fault_tolerance_certificate(
            result.schedule, result.expanded_algorithm, method="exact"
        )
    warning = captured[0].message
    assert warning.resources == ("processors",)
    assert warning.cap == ENUMERATION_CAP
    assert warning.enumerated_subsets == warning.total_subsets
    assert warning.sampled_fraction == 1.0
    assert "processors" in str(warning)
    assert str(ENUMERATION_CAP) in str(warning)
    # Nothing was actually truncated at these level sizes, so the
    # verdict still covers every subset.
    assert certificate.certified


def test_truncated_levels_report_the_sampled_fraction(monkeypatch):
    monkeypatch.setattr(reliability_module, "MAX_SUBSETS_PER_LEVEL", 10)
    processors = ENUMERATION_CAP + 1
    result = schedule_ftbar(_wide_problem(processors))
    with pytest.warns(CertificationCapWarning) as captured:
        certificate = fault_tolerance_certificate(
            result.schedule, result.expanded_algorithm, method="exact"
        )
    warning = captured[0].message
    assert warning.enumerated_subsets < warning.total_subsets
    assert 0.0 < warning.sampled_fraction < 1.0
    assert f"{warning.sampled_fraction:.2%}" in str(warning)
    # Level totals honestly report the enumerated sample size, so the
    # masked fraction is over what was actually replayed.
    crash_2 = certificate.level(2)
    assert crash_2.total_subsets == 10
    # Sampling is deterministic: canonical order, first K subsets.
    with pytest.warns(CertificationCapWarning):
        again = fault_tolerance_certificate(
            result.schedule, result.expanded_algorithm, method="exact"
        )
    assert [
        (level.failures, level.link_failures, level.masked_subsets,
         level.total_subsets)
        for level in again.levels
    ] == [
        (level.failures, level.link_failures, level.masked_subsets,
         level.total_subsets)
        for level in certificate.levels
    ]


def test_link_cap_emits_warning_naming_links():
    result = schedule_ftbar(_linky_problem())
    with pytest.warns(CertificationCapWarning) as captured:
        fault_tolerance_certificate(
            result.schedule,
            result.expanded_algorithm,
            max_link_failures=1,
            method="exact",
        )
    warning = captured[0].message
    assert warning.resources == ("links",)
    assert "links" in str(warning)
