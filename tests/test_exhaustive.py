"""Tests for the exhaustive best-assignment baseline and the E10 gap."""

import pytest

from repro.analysis.experiments import run_optimality_gap
from repro.baselines.exhaustive import ExhaustiveScheduler, schedule_exhaustive
from repro.core.ftbar import schedule_ftbar
from repro.exceptions import InfeasibleReplicationError, SchedulingError
from repro.graphs.algorithm import AlgorithmGraph
from repro.graphs.builder import diamond, linear_chain
from repro.graphs.operations import OperationKind
from repro.schedule.validation import validate_schedule
from repro.workloads.random_dag import RandomWorkloadConfig, generate_problem

from tests.util import uniform_problem


class TestExhaustiveScheduler:
    def test_single_operation_optimum(self):
        graph = AlgorithmGraph("one")
        graph.add_operation("A")
        problem = uniform_problem(graph, processors=3, npf=1)
        result = schedule_exhaustive(problem)
        assert result.makespan == pytest.approx(1.0)
        assert result.exhaustive
        assert result.assignments_total == 3  # C(3,2)

    def test_enumerates_the_whole_space(self):
        problem = uniform_problem(linear_chain(3), processors=3, npf=1)
        result = schedule_exhaustive(problem)
        assert result.assignments_total == 27  # C(3,2)^3
        assert result.assignments_tried == 27

    def test_result_schedule_is_valid(self):
        problem = uniform_problem(diamond(), processors=3, npf=1, comm_time=2.0)
        result = schedule_exhaustive(problem)
        report = validate_schedule(
            result.schedule,
            problem.algorithm,
            problem.architecture,
            problem.exec_times,
            problem.comm_times,
        )
        assert report.ok, str(report)

    def test_never_worse_than_ftbar_without_duplication(self):
        from repro.core.options import SchedulerOptions

        problem = uniform_problem(diamond(), processors=3, npf=1, comm_time=2.0)
        plain = schedule_ftbar(problem, SchedulerOptions(duplication=False))
        best = schedule_exhaustive(problem)
        assert best.makespan <= plain.makespan + 1e-9

    def test_space_bound_enforced(self):
        problem = uniform_problem(linear_chain(8), processors=4, npf=1)
        with pytest.raises(SchedulingError, match="assignment space"):
            ExhaustiveScheduler(problem, max_assignments=100)

    def test_rejects_memories(self):
        graph = AlgorithmGraph("m")
        graph.add_operation("M", OperationKind.MEMORY)
        graph.add_operation("A")
        graph.add_dependency("M", "A")
        problem = uniform_problem(graph, processors=3, npf=1)
        with pytest.raises(SchedulingError, match="memory"):
            ExhaustiveScheduler(problem)

    def test_infeasible_replication_rejected(self):
        problem = uniform_problem(linear_chain(2), processors=3, npf=1)
        problem.exec_times.forbid("T0", "P1")
        problem.exec_times.forbid("T0", "P2")
        with pytest.raises(InfeasibleReplicationError):
            ExhaustiveScheduler(problem)

    def test_respects_distribution_constraints(self):
        problem = uniform_problem(diamond(), processors=3, npf=1)
        problem.exec_times.forbid("B", "P1")
        result = schedule_exhaustive(problem)
        assert result.schedule.replica_on("B", "P1") is None


class TestOptimalityGap:
    def test_gap_points_structure(self):
        points = run_optimality_gap(
            operations=4, processors=3, instances=3, seed=77
        )
        assert len(points) == 3
        for point in points:
            assert point.best_makespan > 0
            assert point.assignments > 0

    def test_ftbar_close_to_best_assignment(self):
        points = run_optimality_gap(
            operations=5, processors=3, instances=5, seed=101
        )
        gaps = [p.gap_percent for p in points]
        # The heuristic should stay within a reasonable factor of the
        # best assignment on tiny instances (and may beat it thanks to
        # duplication).
        assert max(gaps) < 50.0
        assert sum(gaps) / len(gaps) < 25.0

    def test_random_instances_best_not_above_ftbar_by_construction(self):
        # The exhaustive search covers FTBAR's own assignment when
        # FTBAR does not duplicate, so best <= ftbar then.
        from repro.core.options import SchedulerOptions

        problem = generate_problem(
            RandomWorkloadConfig(operations=5, ccr=1.0, processors=3,
                                 npf=1, seed=5)
        )
        plain = schedule_ftbar(problem, SchedulerOptions(duplication=False))
        best = schedule_exhaustive(problem)
        assert best.makespan <= plain.makespan + 1e-9
