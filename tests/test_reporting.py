"""Tests for the text reporting helpers."""

from repro.analysis.experiments import (
    AblationPoint,
    NpfPoint,
    OverheadPoint,
    OverheadSweep,
    PaperExampleResults,
    RuntimePoint,
)
from repro.analysis.reporting import (
    ascii_plot,
    format_ablation,
    format_npf_sweep,
    format_overhead_sweep,
    format_paper_example,
    format_runtime_comparison,
    format_table,
)


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(("a", "bb"), [(1, 2.5), (10, 3.25)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        assert "2.50" in lines[2]

    def test_floats_rendered_with_two_decimals(self):
        assert "3.14" in format_table(("x",), [(3.14159,)])


class TestSweepFormatting:
    def make_sweep(self) -> OverheadSweep:
        return OverheadSweep(
            parameter="N",
            points=[
                OverheadPoint(10.0, 40.0, 55.0, 45.0, 60.0, 5),
                OverheadPoint(20.0, 42.0, 58.0, 47.0, 62.0, 5),
            ],
        )

    def test_both_sections_present(self):
        text = format_overhead_sweep(self.make_sweep(), "Figure 9")
        assert "ABSENCE" in text
        assert "PRESENCE" in text
        assert "FTBAR" in text
        assert "HBP" in text
        assert "Figure 9" in text

    def test_points_rendered(self):
        text = format_overhead_sweep(self.make_sweep(), "t")
        assert "40.00" in text
        assert "62.00" in text


class TestOtherFormatters:
    def test_paper_example(self):
        results = PaperExampleResults(
            ft_length=15.05,
            basic_length=10.7,
            non_ft_length=10.5,
            overhead=4.35,
            degraded={"P1": 15.35},
            rtc_satisfied=True,
            replicas=20,
            comms=7,
        )
        references = {
            "ft_length": 15.05,
            "basic_length": 10.7,
            "overhead": 4.35,
            "degraded": {"P1": 15.35},
        }
        text = format_paper_example(results, references)
        assert "15.05" in text
        assert "P1 crashes" in text

    def test_npf_sweep(self):
        text = format_npf_sweep([NpfPoint(1, 33.0, 120.0, 10)])
        assert "Npf" in text and "33.00" in text

    def test_runtime_comparison(self):
        text = format_runtime_comparison(
            [RuntimePoint(20, 0.010, 0.030, 5)]
        )
        assert "HBP/FTBAR" in text
        assert "3.00" in text

    def test_ablation(self):
        text = format_ablation([AblationPoint("no duplication", 50.0, 30.0, 4)])
        assert "no duplication" in text


class TestAsciiPlot:
    def test_plots_markers_for_each_series(self):
        text = ascii_plot(
            [1.0, 2.0, 3.0],
            {"ftbar": [10.0, 20.0, 30.0], "hbp": [15.0, 25.0, 40.0]},
        )
        assert "F" in text
        assert "H" in text
        assert "F=ftbar" in text

    def test_empty_input(self):
        assert ascii_plot([], {}) == "(no data)"

    def test_constant_series_does_not_crash(self):
        text = ascii_plot([1.0, 2.0], {"flat": [5.0, 5.0]})
        assert "F" in text
