"""Tests for the ExecutionTrace accessors."""

import pytest

from repro.graphs.algorithm import from_dependencies
from repro.simulation.trace import (
    EventStatus,
    ExecutionTrace,
    SimulatedComm,
    SimulatedOperation,
)
from repro.timing.constraints import RealTimeConstraints


def completed_op(name, replica, processor, start, end):
    return SimulatedOperation(
        name, replica, processor, EventStatus.COMPLETED, start, end
    )


def make_trace() -> ExecutionTrace:
    operations = [
        completed_op("A", 0, "P1", 0.0, 1.0),
        completed_op("A", 1, "P2", 0.0, 2.0),
        completed_op("B", 0, "P1", 1.0, 3.0),
        SimulatedOperation("B", 1, "P3", EventStatus.STARVED),
    ]
    comms = [
        SimulatedComm(
            "A", "B", 0, 1, "L1.3", "P1", "P3", 0,
            EventStatus.COMPLETED, 1.0, 1.5, delivered=True,
        ),
        SimulatedComm(
            "A", "B", 1, 1, "L2.3", "P2", "P3", 0, EventStatus.SKIPPED
        ),
    ]
    return ExecutionTrace(operations, comms)


class TestAccessors:
    def test_operation_outcome(self):
        trace = make_trace()
        assert trace.operation_outcome("A", 1).processor == "P2"

    def test_outcomes_of(self):
        assert len(make_trace().outcomes_of("B")) == 2

    def test_completed_filters(self):
        trace = make_trace()
        assert len(trace.completed_operations()) == 3
        assert len(trace.completed_comms()) == 1

    def test_starved_operations(self):
        starved = make_trace().starved_operations()
        assert [o.label() for o in starved] == ["B/1@P3=starved"]


class TestMeasures:
    def test_makespan_over_completed_events(self):
        assert make_trace().makespan() == 3.0

    def test_makespan_empty(self):
        assert ExecutionTrace([], []).makespan() == 0.0

    def test_first_completion(self):
        trace = make_trace()
        assert trace.first_completion("A") == 1.0
        assert trace.first_completion("B") == 3.0

    def test_first_completion_none_when_all_failed(self):
        trace = ExecutionTrace(
            [SimulatedOperation("A", 0, "P1", EventStatus.LOST)], []
        )
        assert trace.first_completion("A") is None

    def test_outputs_completion(self):
        algorithm = from_dependencies([("A", "B")])
        assert make_trace().outputs_completion(algorithm) == 3.0

    def test_outputs_completion_none_when_sink_dead(self):
        algorithm = from_dependencies([("A", "B")])
        trace = ExecutionTrace(
            [
                completed_op("A", 0, "P1", 0.0, 1.0),
                SimulatedOperation("B", 0, "P1", EventStatus.LOST),
            ],
            [],
        )
        assert trace.outputs_completion(algorithm) is None

    def test_all_operations_delivered(self):
        algorithm = from_dependencies([("A", "B")])
        assert make_trace().all_operations_delivered(algorithm)

    def test_rtc_satisfied(self):
        trace = make_trace()
        assert trace.rtc_satisfied(RealTimeConstraints(global_deadline=5.0))
        assert not trace.rtc_satisfied(RealTimeConstraints(global_deadline=2.0))

    def test_summary_counts_statuses(self):
        summary = make_trace().summary()
        assert "completed=4" in summary
        assert "starved=1" in summary
        assert "skipped=1" in summary
