"""Unit tests for Processor and Link value objects."""

import pytest

from repro.hardware.link import Link, LinkKind
from repro.hardware.processor import Processor


class TestProcessor:
    def test_name(self):
        assert Processor("P1").name == "P1"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Processor("")

    def test_ordering(self):
        assert sorted([Processor("P2"), Processor("P1")]) == [
            Processor("P1"),
            Processor("P2"),
        ]

    def test_str(self):
        assert str(Processor("P1")) == "P1"

    def test_hashable(self):
        assert len({Processor("P1"), Processor("P1")}) == 1


class TestLink:
    def test_between_constructor(self):
        link = Link.between("L1.2", "P1", "P2")
        assert link.kind is LinkKind.POINT_TO_POINT
        assert link.endpoints == frozenset({"P1", "P2"})

    def test_bus_constructor(self):
        bus = Link.bus("BUS", ["P1", "P2", "P3"])
        assert bus.is_bus()
        assert len(bus.endpoints) == 3

    def test_point_to_point_needs_two_endpoints(self):
        with pytest.raises(ValueError, match="exactly 2"):
            Link("L", frozenset({"P1"}), LinkKind.POINT_TO_POINT)
        with pytest.raises(ValueError, match="exactly 2"):
            Link("L", frozenset({"P1", "P2", "P3"}), LinkKind.POINT_TO_POINT)

    def test_bus_needs_two_endpoints_minimum(self):
        with pytest.raises(ValueError, match="at least 2"):
            Link.bus("B", ["P1"])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Link.between("", "P1", "P2")

    def test_endpoints_coerced_to_frozenset(self):
        link = Link("L", {"P1", "P2"})  # type: ignore[arg-type]
        assert isinstance(link.endpoints, frozenset)

    def test_kind_coerced_from_string(self):
        link = Link("B", frozenset({"P1", "P2", "P3"}), "bus")  # type: ignore[arg-type]
        assert link.kind is LinkKind.BUS

    def test_connects(self):
        link = Link.between("L", "P1", "P2")
        assert link.connects("P1", "P2")
        assert link.connects("P2", "P1")
        assert not link.connects("P1", "P3")

    def test_attaches(self):
        link = Link.between("L", "P1", "P2")
        assert link.attaches("P1")
        assert not link.attaches("P3")

    def test_sorted_endpoints(self):
        assert Link.between("L", "P2", "P1").sorted_endpoints() == ("P1", "P2")

    def test_predicates(self):
        assert Link.between("L", "P1", "P2").is_point_to_point()
        assert not Link.between("L", "P1", "P2").is_bus()

    def test_str(self):
        assert str(Link.between("L1.2", "P1", "P2")) == "L1.2"
