"""Shared fixtures for the FTBAR reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.ftbar import schedule_ftbar
from repro.workloads.paper_example import build_problem


@pytest.fixture(scope="session")
def paper_problem():
    """The worked example of the paper (Figure 2, Tables 1-2)."""
    return build_problem()


@pytest.fixture(scope="session")
def paper_result(paper_problem):
    """The FTBAR schedule of the worked example (computed once)."""
    return schedule_ftbar(paper_problem)
