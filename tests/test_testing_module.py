"""Tests for the public hypothesis strategies (repro.testing)."""

from hypothesis import HealthCheck, given, settings

from repro.core.ftbar import schedule_ftbar
from repro.graphs.algorithm import AlgorithmGraph
from repro.problem import ProblemSpec
from repro.testing import algorithm_graphs, problems, workload_configs
from repro.workloads.random_dag import RandomWorkloadConfig

_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(config=workload_configs(max_operations=8))
@_SETTINGS
def test_workload_configs_produce_valid_configs(config):
    assert isinstance(config, RandomWorkloadConfig)
    assert 1 <= config.operations <= 8
    assert config.ccr > 0


@given(problem=problems(max_operations=8))
@_SETTINGS
def test_problems_are_feasible_and_schedulable(problem):
    assert isinstance(problem, ProblemSpec)
    problem.validate()
    result = schedule_ftbar(problem)
    assert result.makespan >= 0


@given(graph=algorithm_graphs(max_operations=8))
@_SETTINGS
def test_algorithm_graphs_are_dags(graph):
    assert isinstance(graph, AlgorithmGraph)
    assert graph.is_acyclic()
    assert len(graph) >= 1


def test_strategies_importable_without_use():
    # The module exposes exactly its documented names.
    import repro.testing as testing

    assert testing.__all__ == ["algorithm_graphs", "problems", "workload_configs"]
